//! Property tests of the host-side decoding stack: arbitrary chunking
//! of the byte stream never changes what gets decoded, and garbage never
//! breaks the session log.

use distscroll_host::session::SessionLog;
use distscroll_host::telemetry::{parse_record, Record, StreamDecoder};
use distscroll_hw::link::encode_frame;
use proptest::prelude::*;

/// Builds a valid wire stream of `n` alternating T/E records.
fn wire_stream(n: usize, base_stamp: u16) -> (Vec<u8>, usize) {
    let mut bytes = Vec::new();
    for k in 0..n {
        let stamp = base_stamp.wrapping_add(k as u16 * 10);
        let payload: Vec<u8> = if k % 2 == 0 {
            vec![b'T', (stamp >> 8) as u8, stamp as u8, 0, 100, 2, 0, 3]
        } else {
            vec![b'E', (stamp >> 8) as u8, stamp as u8, b'H', (k % 8) as u8]
        };
        bytes.extend_from_slice(&encode_frame(&payload));
    }
    (bytes, n)
}

proptest! {
    #[test]
    fn chunking_never_changes_the_decoded_records(
        n in 1usize..20,
        base in any::<u16>(),
        cuts in proptest::collection::vec(1usize..50, 0..20),
    ) {
        let (stream, expect) = wire_stream(n, base);
        // Reference: one shot.
        let mut whole = StreamDecoder::new();
        let reference = whole.push_bytes(&stream);
        prop_assert_eq!(reference.len(), expect);

        // Chunked: cut the stream at arbitrary points.
        let mut chunked = StreamDecoder::new();
        let mut got: Vec<Record> = Vec::new();
        let mut pos = 0;
        for cut in cuts {
            if pos >= stream.len() {
                break;
            }
            let end = (pos + cut).min(stream.len());
            got.extend(chunked.push_bytes(&stream[pos..end]));
            pos = end;
        }
        if pos < stream.len() {
            got.extend(chunked.push_bytes(&stream[pos..]));
        }
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn garbage_prefix_costs_at_most_one_fake_frame(
        junk in proptest::collection::vec(any::<u8>(), 0..200),
        n in 2usize..10,
    ) {
        // A junk tail that happens to look like a frame header (SYNC1
        // SYNC2 len) can make the decoder swallow up to 255 + 2 bytes of
        // the real stream before resynchronizing — after that, every
        // record must flow.
        let (stream, _) = wire_stream(n, 0);
        let mut dec = StreamDecoder::new();
        let _ = dec.push_bytes(&junk);
        // Push filler streams until past the worst-case swallow.
        let mut pushed = 0usize;
        while pushed < 257 + stream.len() {
            let _ = dec.push_bytes(&stream);
            pushed += stream.len();
        }
        let got = dec.push_bytes(&stream).len();
        prop_assert_eq!(got, n, "after resync every record must decode");
    }

    #[test]
    fn parse_never_panics_on_arbitrary_payloads(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = parse_record(&payload);
    }

    #[test]
    fn session_log_ticks_are_always_monotonic(
        stamps in proptest::collection::vec(any::<u16>(), 1..200),
    ) {
        // Whatever stamp sequence arrives (wraps included), the unwrapped
        // ticks never go backwards by construction.
        let mut log = SessionLog::new();
        for (i, &stamp) in stamps.iter().enumerate() {
            let payload = [b'E', (stamp >> 8) as u8, stamp as u8, b'H', (i % 8) as u8];
            if let Ok(rec) = parse_record(&payload) {
                log.ingest(rec);
            }
        }
        let ticks: Vec<u64> = log.records().iter().map(|r| r.tick).collect();
        for w in ticks.windows(2) {
            prop_assert!(w[1] >= w[0], "ticks went backwards: {} then {}", w[0], w[1]);
        }
    }
}
