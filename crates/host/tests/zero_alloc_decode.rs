//! Proof that the host decode path holds the same zero-allocation bar
//! as the firmware loop: once the frame scratch buffer, the ARQ reorder
//! parking lot and its recycled buffers have warmed up, pushing radio
//! bytes through [`StreamDecoder::push_bytes_with`] performs **zero**
//! heap allocations — `Record` is `Copy` and every payload is borrowed.
//!
//! The same counting-allocator wrapper as `distscroll-core`'s
//! `zero_alloc` test, tallying per thread so the multi-threaded test
//! harness cannot pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use distscroll_host::telemetry::{Record, StreamDecoder};
use distscroll_hw::arq::{ArqClass, ArqTx};
use distscroll_hw::link::encode_frame;

thread_local! {
    /// Allocation calls (alloc + realloc) made by the current thread.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Counts allocation calls, then forwards everything to [`System`].
struct CountingAlloc;

// SAFETY: every operation forwards verbatim to the system allocator;
// the only addition is a thread-local counter bump, which allocates
// nothing and upholds the GlobalAlloc contract by construction.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: counting aside, this is the system allocator verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        // SAFETY: the caller upholds GlobalAlloc's contract for `layout`;
        // it is forwarded to the system allocator unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: frees are not counted; the call is the system allocator verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `Self::alloc`, i.e. from `System`, with
        // this same `layout`; both are forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: counting aside, this is the system allocator verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        // SAFETY: `ptr` came from `Self::alloc`, i.e. from `System`, with
        // this same `layout`; all arguments are forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

/// `count` sequenced data frames as one contiguous radio byte stream,
/// with every pair swapped so the receiver's reorder path (parking and
/// releasing) stays exercised, not just the fast in-order path.
fn data_stream(tx: &mut ArqTx, count: u16) -> Vec<u8> {
    let mut wires: Vec<Vec<u8>> = Vec::new();
    for i in 0..count {
        let stamp = i.to_be_bytes();
        tx.enqueue(
            ArqClass::State,
            &[b'T', stamp[0], stamp[1], 0, 100, 0xff, 0, 0],
            0,
        );
        tx.service(0, |w| wires.push(encode_frame(w)));
        // Pretend the ack arrived so the queue never fills or resends.
        tx.on_ack(
            distscroll_hw::arq::decode_data(&wires.last().unwrap()[3..])
                .unwrap()
                .0,
            0,
        );
    }
    for pair in wires.chunks_mut(2) {
        if let [a, b] = pair {
            std::mem::swap(a, b);
        }
    }
    wires.concat()
}

#[test]
fn steady_state_arq_decode_allocates_nothing() {
    let mut tx = ArqTx::new();
    let mut dec = StreamDecoder::with_arq();
    let mut records = 0u64;

    // Warm-up: frame scratch, the parking lot and its spare buffers all
    // reach steady-state capacity.
    let warm = data_stream(&mut tx, 200);
    dec.push_bytes_with(&warm, |_: Record| records += 1);
    assert_eq!(records, 200, "warm-up records must all decode");

    // The measured stream is built *before* the window: building frames
    // allocates, decoding them must not.
    let hot = data_stream(&mut tx, 200);
    let before = allocations_on_this_thread();
    dec.push_bytes_with(&hot, |_: Record| records += 1);
    let allocated = allocations_on_this_thread() - before;
    assert_eq!(records, 400, "measured records must all decode");
    assert_eq!(
        allocated, 0,
        "steady-state push_bytes_with must not allocate"
    );
    let q = dec.arq_quality().expect("arq decoder");
    assert_eq!(q.delivered, 400);
    assert!(q.out_of_order > 0, "the reorder path must be exercised");
}
