//! Replay: reconstruct the hand's trajectory from logged codes.
//!
//! The host knows the calibration curve (Figure 4), so logged ADC codes
//! convert back to distances. [`Trajectory`] carries the reconstructed
//! motion and renders it as an ASCII strip chart — the experimenter's
//! "what did the participant actually do with their arm" view, and the
//! input to gesture-level statistics (mean speed, travel, dwell
//! fraction).

use distscroll_sensors::calibrate::InverseCurveFit;

use crate::session::{SessionLog, TimedRecord};
use crate::telemetry::Record;

/// A reconstructed hand trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// (seconds, distance cm) samples, in time order.
    pub samples: Vec<(f64, f64)>,
}

impl Trajectory {
    /// Reconstructs from a session log through the calibration curve.
    /// Codes outside the curve's invertible range are skipped (the hand
    /// was out of the sensor's view).
    pub fn from_log(log: &SessionLog, curve: &InverseCurveFit, tick_s: f64) -> Trajectory {
        let samples = log
            .records()
            .iter()
            .filter_map(|tr: &TimedRecord| match tr.record {
                Record::State(s) => {
                    let volts = f64::from(s.code) / 1023.0 * 5.0;
                    curve
                        .distance_at(volts)
                        .filter(|d| (2.0..=45.0).contains(d))
                        .map(|d| (tr.tick as f64 * tick_s, d))
                }
                Record::Event(_) => None,
            })
            .collect();
        Trajectory { samples }
    }

    /// Total hand travel, cm.
    pub fn travel_cm(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| (w[1].1 - w[0].1).abs())
            .sum()
    }

    /// Mean absolute hand speed, cm/s.
    pub fn mean_speed(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) if b.0 > a.0 => self.travel_cm() / (b.0 - a.0),
            _ => 0.0,
        }
    }

    /// Fraction of samples where the hand moved less than `eps_cm` since
    /// the previous sample — the dwell fraction.
    pub fn dwell_fraction(&self, eps_cm: f64) -> f64 {
        if self.samples.len() < 2 {
            return 1.0;
        }
        let still = self
            .samples
            .windows(2)
            .filter(|w| (w[1].1 - w[0].1).abs() < eps_cm)
            .count();
        still as f64 / (self.samples.len() - 1) as f64
    }

    /// An ASCII strip chart of distance over time, `width` columns wide
    /// and `height` rows tall (nearest at the bottom).
    pub fn strip_chart(&self, width: usize, height: usize) -> String {
        let (Some(&(t0, _)), Some(&(t_last, _))) = (self.samples.first(), self.samples.last())
        else {
            return "(no trajectory samples)".to_string();
        };
        if width == 0 || height == 0 {
            return "(no trajectory samples)".to_string();
        }
        let t1 = t_last.max(t0 + 1e-9);
        let (mut d_lo, mut d_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, d) in &self.samples {
            d_lo = d_lo.min(d);
            d_hi = d_hi.max(d);
        }
        if (d_hi - d_lo).abs() < 1e-9 {
            d_hi = d_lo + 1.0;
        }
        // Degenerate ranges must not reach the division below. The
        // `t0 + 1e-9` nudge above is absorbed by f64 rounding once t0 is
        // large (one sample at t0 ≈ 1e9 s gives span == 0, and the old
        // 0/0 produced NaN that `as usize` silently turned into cell 0);
        // worse, unsorted samples make `t - t0` exceed a tiny span, and
        // the huge ratio indexed the grid out of bounds.
        let span_t = t1 - t0;
        let span_d = d_hi - d_lo;
        let project = |offset: f64, span: f64, cells: usize| -> usize {
            if span.is_nan() || span <= 0.0 || cells <= 1 {
                return 0;
            }
            ((offset / span).clamp(0.0, 1.0) * (cells - 1) as f64).round() as usize
        };
        let mut grid = vec![vec![' '; width]; height];
        for &(t, d) in &self.samples {
            let col = project(t - t0, span_t, width);
            let row_up = project(d - d_lo, span_d, height);
            grid[height - 1 - row_up][col] = '*';
        }
        let mut out = String::new();
        out.push_str(&format!("{d_hi:>6.1} cm\n"));
        for row in grid {
            out.push('|');
            out.push_str(String::from_iter(row).trim_end());
            out.push('\n');
        }
        out.push_str(&format!("{d_lo:>6.1} cm  ({:.1} s)\n", t1 - t0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Record, StateRecord};
    use distscroll_sensors::calibrate::fit_inverse_curve;
    use distscroll_sensors::gp2d120;

    fn curve() -> InverseCurveFit {
        let pts: Vec<(f64, f64)> = (4..=30)
            .map(|d| (f64::from(d), gp2d120::ideal_voltage(f64::from(d))))
            .collect();
        fit_inverse_curve(&pts).expect("ideal points fit")
    }

    fn log_with_distances(ds: &[f64]) -> SessionLog {
        let c = curve();
        let mut log = SessionLog::new();
        for (i, &d) in ds.iter().enumerate() {
            let code = (c.voltage_at(d) / 5.0 * 1023.0).round() as u16;
            log.ingest(Record::State(StateRecord {
                stamp: (i * 10) as u16,
                code,
                island: None,
                level: 0,
                highlighted: 0,
            }));
        }
        log
    }

    #[test]
    fn reconstruction_inverts_the_curve() {
        let log = log_with_distances(&[5.0, 10.0, 20.0, 28.0]);
        let traj = Trajectory::from_log(&log, &curve(), 0.01);
        assert_eq!(traj.samples.len(), 4);
        for (sample, want) in traj.samples.iter().zip([5.0, 10.0, 20.0, 28.0]) {
            assert!((sample.1 - want).abs() < 0.3, "{} vs {want}", sample.1);
        }
    }

    #[test]
    fn travel_and_speed_are_computed() {
        let log = log_with_distances(&[10.0, 20.0, 10.0]);
        let traj = Trajectory::from_log(&log, &curve(), 0.01);
        assert!(
            (traj.travel_cm() - 20.0).abs() < 1.0,
            "travel {}",
            traj.travel_cm()
        );
        assert!(traj.mean_speed() > 0.0);
    }

    #[test]
    fn dwell_fraction_distinguishes_rest_from_motion() {
        let still = Trajectory::from_log(&log_with_distances(&[15.0; 20]), &curve(), 0.01);
        let moving = Trajectory::from_log(
            &log_with_distances(&[5.0, 10.0, 15.0, 20.0, 25.0]),
            &curve(),
            0.01,
        );
        assert!(still.dwell_fraction(0.5) > 0.9);
        assert!(moving.dwell_fraction(0.5) < 0.3);
    }

    #[test]
    fn out_of_view_codes_are_skipped() {
        let mut log = SessionLog::new();
        log.ingest(Record::State(StateRecord {
            stamp: 0,
            code: 5, // deep below the sensor floor
            island: None,
            level: 0,
            highlighted: 0,
        }));
        let traj = Trajectory::from_log(&log, &curve(), 0.01);
        assert!(traj.samples.is_empty());
    }

    #[test]
    fn strip_chart_renders_extremes() {
        let log = log_with_distances(&[5.0, 28.0, 5.0, 28.0]);
        let traj = Trajectory::from_log(&log, &curve(), 0.01);
        let chart = traj.strip_chart(40, 8);
        assert!(chart.contains('*'));
        assert!(chart.lines().count() >= 10);
    }

    #[test]
    fn one_sample_far_from_boot_renders_in_bounds() {
        // Regression (found by fuzzing the projection): with one sample
        // at a large timestamp, `t0 + 1e-9 == t0` in f64, the time span
        // collapsed to zero and 0/0 NaN picked a garbage cell.
        let traj = Trajectory {
            samples: vec![(1.0e9, 17.5)],
        };
        let chart = traj.strip_chart(40, 8);
        assert_eq!(chart.matches('*').count(), 1);
        // The single sample lands in the leftmost column, bottom row.
        assert!(chart.lines().nth(8).is_some_and(|l| l.starts_with("|*")));
    }

    #[test]
    fn unsorted_samples_do_not_index_out_of_bounds() {
        // Regression (found by fuzzing the projection): `samples` is pub
        // and nothing promises time order; with t_last < t0 the nudged
        // span was ~1e-9 and (t - t0) / span indexed columns in the
        // billions — an out-of-bounds panic pre-fix. Out-of-range points
        // clamp to the chart edge instead.
        let traj = Trajectory {
            samples: vec![(5.0, 10.0), (10.0, 12.0), (0.0, 11.0)],
        };
        let chart = traj.strip_chart(40, 8);
        assert!(chart.contains('*'));
    }

    #[test]
    fn flat_trace_renders_on_the_bottom_row() {
        // Constant distance: the d-range widens by 1 cm for display and
        // every sample sits on the bottom row.
        let traj = Trajectory::from_log(&log_with_distances(&[15.0; 12]), &curve(), 0.01);
        let chart = traj.strip_chart(30, 6);
        let rows: Vec<&str> = chart.lines().collect();
        assert!(rows[rows.len() - 2].contains('*'), "{chart}");
        for row in &rows[1..rows.len() - 2] {
            assert!(
                !row.contains('*'),
                "flat trace crept above the floor: {chart}"
            );
        }
    }

    #[test]
    fn empty_log_renders_gracefully() {
        let traj = Trajectory { samples: vec![] };
        assert_eq!(traj.strip_chart(40, 8), "(no trajectory samples)");
        assert_eq!(traj.travel_cm(), 0.0);
        assert_eq!(traj.mean_speed(), 0.0);
        assert_eq!(traj.dwell_fraction(0.1), 1.0);
    }
}
