//! Session logging: the experimenter's view of one device session.
//!
//! Ingests telemetry records, unwraps the 16-bit tick stamps into a
//! monotonic timeline, and derives the measures a scrolling study
//! reports per selection: time, scroll path length, direction
//! reversals, and the sequence of entries passed through. Exports a
//! flat CSV for external analysis.

use crate::telemetry::{EventKind, Record};

/// Device tick period assumed for time conversion, seconds. The
/// firmware default is 10 ms; pass the actual value if configured
/// differently.
pub const DEFAULT_TICK_S: f64 = 0.010;

/// A record with its unwrapped (monotonic) tick count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedRecord {
    /// Monotonic device tick.
    pub tick: u64,
    /// The record.
    pub record: Record,
}

/// One completed selection, as reconstructed from the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionMeasure {
    /// Tick of the previous selection (or session start).
    pub from_tick: u64,
    /// Tick of this selection's `Activated`/`EnteredSubmenu` event.
    pub at_tick: u64,
    /// Seconds between them.
    pub duration_s: f64,
    /// Entries the highlight passed through on the way.
    pub path: Vec<u8>,
    /// Direction reversals of the highlight along the way.
    pub reversals: u32,
    /// The entry that was selected (last highlight before the event).
    pub selected: Option<u8>,
}

/// Half the 16-bit stamp space: the serial-number-arithmetic horizon
/// (RFC 1982). A forward step of less than this is "newer"; anything
/// else is an older, reordered record.
const SERIAL_HALF: u64 = 32_768;

/// A session log under construction.
#[derive(Debug, Clone, Default)]
pub struct SessionLog {
    records: Vec<TimedRecord>,
    /// Newest point of the timeline seen so far: the 16-bit stamp and
    /// the unwrapped tick it resolved to.
    frontier: Option<(u16, u64)>,
    tick_s: f64,
}

impl SessionLog {
    /// An empty log assuming the default 10 ms tick.
    pub fn new() -> Self {
        SessionLog {
            tick_s: DEFAULT_TICK_S,
            ..SessionLog::default()
        }
    }

    /// An empty log for a device configured with a different tick.
    ///
    /// # Panics
    ///
    /// Panics if `tick_s` is not positive.
    pub fn with_tick(tick_s: f64) -> Self {
        assert!(tick_s > 0.0, "tick period must be positive");
        SessionLog {
            tick_s,
            ..SessionLog::default()
        }
    }

    /// Ingests one record, unwrapping its 16-bit stamp.
    ///
    /// Unwrapping uses serial-number arithmetic (RFC 1982): relative to
    /// the newest stamp seen so far, a forward distance under 32768 is
    /// progress (this is what carries the timeline across the 16-bit
    /// wrap), while anything else is an *older* record that the radio
    /// link delivered late — a reordered or retransmitted frame — and is
    /// placed back where it belongs instead of being misread as a wrap.
    /// The old `stamp < last ⇒ wrap` heuristic added a phantom 65536
    /// ticks on every jitter-induced reordering, corrupting every
    /// subsequent timestamp.
    pub fn ingest(&mut self, record: Record) {
        let stamp = record.stamp();
        let tick = match self.frontier {
            None => {
                let tick = u64::from(stamp);
                self.frontier = Some((stamp, tick));
                tick
            }
            Some((front_stamp, front_tick)) => {
                let delta = u64::from(stamp.wrapping_sub(front_stamp));
                if delta < SERIAL_HALF {
                    let tick = front_tick + delta;
                    self.frontier = Some((stamp, tick));
                    tick
                } else {
                    // Older than the frontier by 65536 - delta ticks;
                    // saturate rather than underflow if the very first
                    // records arrived out of order.
                    front_tick.saturating_sub(65_536 - delta)
                }
            }
        };
        // Insert in tick order so `records()` stays a monotonic
        // timeline even when the link delivers out of order. Streams
        // are nearly sorted, so scanning from the tail is cheap.
        let at = self
            .records
            .iter()
            .rposition(|r| r.tick <= tick)
            .map_or(0, |i| i + 1);
        self.records.insert(at, TimedRecord { tick, record });
    }

    /// Ingests a batch.
    pub fn ingest_all<I: IntoIterator<Item = Record>>(&mut self, records: I) {
        for r in records {
            self.ingest(r);
        }
    }

    /// All records with unwrapped ticks.
    pub fn records(&self) -> &[TimedRecord] {
        &self.records
    }

    /// Session length in seconds (first to last record).
    pub fn duration_s(&self) -> f64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => (b.tick - a.tick) as f64 * self.tick_s,
            _ => 0.0,
        }
    }

    /// Reconstructs per-selection measures: each `Activated` or
    /// `EnteredSubmenu` event closes one selection, measured from the
    /// previous one (or session start).
    pub fn selections(&self) -> Vec<SelectionMeasure> {
        let mut out = Vec::new();
        let mut segment_start = self.records.first().map_or(0, |r| r.tick);
        let mut path: Vec<u8> = Vec::new();
        for tr in &self.records {
            match tr.record {
                Record::Event(e) => match e.kind {
                    EventKind::Highlight => path.push(e.aux),
                    EventKind::Activated | EventKind::EnteredSubmenu => {
                        let reversals = count_reversals(&path);
                        out.push(SelectionMeasure {
                            from_tick: segment_start,
                            at_tick: tr.tick,
                            duration_s: (tr.tick - segment_start) as f64 * self.tick_s,
                            selected: path.last().copied(),
                            path: std::mem::take(&mut path),
                            reversals,
                        });
                        segment_start = tr.tick;
                    }
                    _ => {}
                },
                Record::State(_) => {}
            }
        }
        out
    }

    /// Counts brown-outs seen in the stream.
    pub fn brownouts(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.record, Record::Event(e) if e.kind == EventKind::BrownOut))
            .count()
    }

    /// Exports the raw record stream as CSV
    /// (`tick,seconds,kind,code,island,level,highlighted,event,aux`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("tick,seconds,kind,code,island,level,highlighted,event,aux\n");
        for tr in &self.records {
            let secs = tr.tick as f64 * self.tick_s;
            match tr.record {
                Record::State(s) => {
                    out.push_str(&format!(
                        "{},{:.3},state,{},{},{},{},,\n",
                        tr.tick,
                        secs,
                        s.code,
                        s.island.map_or(String::new(), |i| i.to_string()),
                        s.level,
                        s.highlighted
                    ));
                }
                Record::Event(e) => {
                    out.push_str(&format!(
                        "{},{:.3},event,,,,,{:?},{}\n",
                        tr.tick, secs, e.kind, e.aux
                    ));
                }
            }
        }
        out
    }
}

/// Direction reversals in a highlight path.
fn count_reversals(path: &[u8]) -> u32 {
    let mut reversals = 0;
    let mut last_dir = 0i32;
    for w in path.windows(2) {
        let dir = (i32::from(w[1]) - i32::from(w[0])).signum();
        if dir != 0 && last_dir != 0 && dir != last_dir {
            reversals += 1;
        }
        if dir != 0 {
            last_dir = dir;
        }
    }
    reversals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{EventRecord, StateRecord};

    fn state(stamp: u16, code: u16) -> Record {
        Record::State(StateRecord {
            stamp,
            code,
            island: Some(0),
            level: 0,
            highlighted: 0,
        })
    }

    fn event(stamp: u16, kind: EventKind, aux: u8) -> Record {
        Record::Event(EventRecord { stamp, kind, aux })
    }

    #[test]
    fn stamps_unwrap_across_the_16_bit_boundary() {
        let mut log = SessionLog::new();
        log.ingest(state(65_530, 100));
        log.ingest(state(65_535, 100));
        log.ingest(state(4, 100)); // wrapped
        log.ingest(state(10, 100));
        let ticks: Vec<u64> = log.records().iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![65_530, 65_535, 65_540, 65_546]);
        assert!((log.duration_s() - 16.0 * 0.01).abs() < 1e-9);
    }

    #[test]
    fn reordered_stamps_do_not_fake_a_wrap() {
        // Regression: a jitter-reordered arrival (110 then 105) made the
        // old `stamp < last ⇒ wrap` heuristic add a phantom 65536 ticks,
        // corrupting this and every later timestamp. Serial-number
        // arithmetic reads the small backwards jump as reordering and
        // slots the record back into place.
        let mut log = SessionLog::new();
        log.ingest(state(100, 1));
        log.ingest(state(110, 2));
        log.ingest(state(105, 3)); // arrived late
        log.ingest(state(120, 4));
        let ticks: Vec<u64> = log.records().iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![100, 105, 110, 120]);
        assert!((log.duration_s() - 20.0 * 0.01).abs() < 1e-9);
    }

    #[test]
    fn duplicated_stamps_share_a_tick() {
        let mut log = SessionLog::new();
        log.ingest(state(50, 1));
        log.ingest(state(50, 1)); // retransmitted copy
        log.ingest(state(60, 2));
        let ticks: Vec<u64> = log.records().iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![50, 50, 60]);
    }

    #[test]
    fn reordering_across_the_wrap_boundary_resolves_backwards() {
        let mut log = SessionLog::new();
        log.ingest(state(65_534, 1));
        log.ingest(state(3, 2)); // wrapped: 5 ticks forward
        log.ingest(state(65_535, 3)); // late pre-wrap record
        let ticks: Vec<u64> = log.records().iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![65_534, 65_535, 65_539]);
    }

    #[test]
    fn early_reordering_saturates_at_session_start() {
        let mut log = SessionLog::new();
        log.ingest(state(2, 1));
        // Claims to be ~6 ticks before the first record; the unwrapped
        // timeline starts at 0, so it clamps there instead of wrapping.
        log.ingest(state(65_532, 2));
        let ticks: Vec<u64> = log.records().iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![0, 2]);
    }

    #[test]
    fn selections_are_segmented_by_events() {
        let mut log = SessionLog::new();
        log.ingest(state(0, 100));
        log.ingest(event(50, EventKind::Highlight, 2));
        log.ingest(event(80, EventKind::Highlight, 4));
        log.ingest(event(120, EventKind::Activated, 1));
        log.ingest(event(200, EventKind::Highlight, 3));
        log.ingest(event(260, EventKind::EnteredSubmenu, 0));
        let sels = log.selections();
        assert_eq!(sels.len(), 2);
        assert_eq!(sels[0].path, vec![2, 4]);
        assert_eq!(sels[0].selected, Some(4));
        assert!((sels[0].duration_s - 1.2).abs() < 1e-9);
        assert_eq!(sels[1].path, vec![3]);
        assert_eq!(sels[1].from_tick, 120);
    }

    #[test]
    fn reversals_are_counted_from_the_path() {
        assert_eq!(count_reversals(&[1, 2, 3, 4]), 0);
        assert_eq!(count_reversals(&[1, 4, 2]), 1);
        assert_eq!(count_reversals(&[1, 4, 2, 5, 0]), 3);
        assert_eq!(count_reversals(&[3, 3, 3]), 0, "repeats are not reversals");
        assert_eq!(count_reversals(&[]), 0);
    }

    #[test]
    fn brownouts_are_visible() {
        let mut log = SessionLog::new();
        log.ingest(event(10, EventKind::BrownOut, 0));
        assert_eq!(log.brownouts(), 1);
    }

    #[test]
    fn csv_has_a_row_per_record() {
        let mut log = SessionLog::new();
        log.ingest(state(0, 123));
        log.ingest(event(5, EventKind::Highlight, 2));
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows");
        assert!(lines[1].contains("state"));
        assert!(lines[1].contains("123"));
        assert!(lines[2].contains("Highlight"));
    }

    #[test]
    fn custom_tick_scales_times() {
        let mut log = SessionLog::with_tick(0.02);
        log.ingest(state(0, 0));
        log.ingest(state(100, 0));
        assert!((log.duration_s() - 2.0).abs() < 1e-9);
    }
}
