//! The telemetry wire protocol.
//!
//! The firmware ships two record kinds over the framed radio link:
//!
//! | kind | layout | meaning |
//! |---|---|---|
//! | `T` | `['T', stamp_hi, stamp_lo, code_hi, code_lo, island, level, highlighted]` | periodic state snapshot |
//! | `E` | `['E', stamp_hi, stamp_lo, tag, aux]` | one interaction event |
//!
//! `stamp` is the low 16 bits of the device's tick counter; the host
//! unwraps it into a monotonic tick count (the device ticks every
//! ~10 ms, so 16 bits wrap after ~11 minutes — ordinary telemetry rates
//! see a record far more often than that).

use distscroll_hw::arq::{self, ArqRx, LinkQuality};
use distscroll_hw::link::FrameDecoder;
use distscroll_hw::HwError;
use std::sync::atomic::{AtomicU64, Ordering};

/// A periodic state snapshot from the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateRecord {
    /// Low 16 bits of the device tick counter.
    pub stamp: u16,
    /// Filtered ADC code.
    pub code: u16,
    /// Selected island index, or `None` while nothing is selected.
    pub island: Option<u8>,
    /// Menu depth.
    pub level: u8,
    /// Highlighted entry at the current level.
    pub highlighted: u8,
}

/// Event tags as the firmware encodes them (see
/// `distscroll-core::events::Event::wire_tag`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The highlight moved (`aux` = new index).
    Highlight,
    /// A leaf was activated (`aux` = path depth).
    Activated,
    /// A submenu was entered.
    EnteredSubmenu,
    /// The cursor went back up.
    WentBack,
    /// Long-menu page flip towards index 0.
    PageBack,
    /// Long-menu page flip away from index 0.
    PageForward,
    /// The device browned out.
    BrownOut,
}

impl EventKind {
    /// Decodes a wire tag.
    pub fn from_tag(tag: u8) -> Option<EventKind> {
        Some(match tag {
            b'H' => EventKind::Highlight,
            b'A' => EventKind::Activated,
            b'S' => EventKind::EnteredSubmenu,
            b'B' => EventKind::WentBack,
            b'<' => EventKind::PageBack,
            b'>' => EventKind::PageForward,
            b'!' => EventKind::BrownOut,
            _ => return None,
        })
    }
}

/// An interaction event from the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Low 16 bits of the device tick counter.
    pub stamp: u16,
    /// What happened.
    pub kind: EventKind,
    /// Event-specific operand (highlight index, path depth, level).
    pub aux: u8,
}

/// Any telemetry record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    /// A periodic state snapshot.
    State(StateRecord),
    /// An interaction event.
    Event(EventRecord),
}

impl Record {
    /// The record's tick stamp.
    pub fn stamp(&self) -> u16 {
        match self {
            Record::State(s) => s.stamp,
            Record::Event(e) => e.stamp,
        }
    }
}

/// Errors from record parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload was empty.
    Empty,
    /// Unknown record kind byte.
    UnknownKind {
        /// The kind byte received.
        kind: u8,
    },
    /// A record had the wrong length for its kind.
    BadLength {
        /// The kind byte.
        kind: u8,
        /// Bytes received.
        got: usize,
        /// Bytes expected.
        expected: usize,
    },
    /// An event record carried an unknown tag.
    UnknownEventTag {
        /// The tag byte.
        tag: u8,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty telemetry payload"),
            ProtocolError::UnknownKind { kind } => {
                write!(f, "unknown telemetry record kind {kind:#04x}")
            }
            ProtocolError::BadLength {
                kind,
                got,
                expected,
            } => write!(
                f,
                "telemetry record {kind:#04x} has {got} bytes, expected {expected}"
            ),
            ProtocolError::UnknownEventTag { tag } => {
                write!(f, "unknown event tag {tag:#04x}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Parses one frame payload into a typed record.
///
/// # Errors
///
/// [`ProtocolError`] on malformed payloads; a corrupted-but-CRC-valid
/// payload cannot occur over the real link, but the host must still
/// never panic on one.
pub fn parse_record(payload: &[u8]) -> Result<Record, ProtocolError> {
    let (&kind, rest) = payload.split_first().ok_or(ProtocolError::Empty)?;
    match kind {
        b'T' => {
            if rest.len() != 7 {
                return Err(ProtocolError::BadLength {
                    kind,
                    got: rest.len(),
                    expected: 7,
                });
            }
            Ok(Record::State(StateRecord {
                stamp: u16::from(rest[0]) << 8 | u16::from(rest[1]),
                code: u16::from(rest[2]) << 8 | u16::from(rest[3]),
                island: (rest[4] != 0xff).then_some(rest[4]),
                level: rest[5],
                highlighted: rest[6],
            }))
        }
        b'E' => {
            if rest.len() != 4 {
                return Err(ProtocolError::BadLength {
                    kind,
                    got: rest.len(),
                    expected: 4,
                });
            }
            let tag = rest[2];
            let kind_e = EventKind::from_tag(tag).ok_or(ProtocolError::UnknownEventTag { tag })?;
            Ok(Record::Event(EventRecord {
                stamp: u16::from(rest[0]) << 8 | u16::from(rest[1]),
                kind: kind_e,
                aux: rest[3],
            }))
        }
        other => Err(ProtocolError::UnknownKind { kind: other }),
    }
}

/// Stacks record parsing on the link-layer frame decoder: feed raw radio
/// bytes, collect typed records.
///
/// Built with [`StreamDecoder::with_arq`], the decoder additionally
/// terminates the reliable transport: sequence-numbered `'D'` payloads
/// are deduplicated and reordered by an [`ArqRx`] before their inner
/// records are parsed, and [`StreamDecoder::ack_payload`] yields the
/// acknowledgement to send back to the device.
#[derive(Debug, Clone, Default)]
pub struct StreamDecoder {
    frames: FrameDecoder,
    arq: Option<ArqRx>,
    records_ok: u64,
    records_bad: u64,
    crc_failures: u64,
}

impl StreamDecoder {
    /// A fresh decoder for the fire-and-forget protocol.
    pub fn new() -> Self {
        StreamDecoder::default()
    }

    /// A decoder terminating the ARQ transport: data payloads pass
    /// through dedup + reorder before record parsing.
    pub fn with_arq() -> Self {
        StreamDecoder {
            arq: Some(ArqRx::new()),
            ..StreamDecoder::default()
        }
    }

    /// An ARQ-terminating decoder that attaches to a transmitter already
    /// mid-stream: the receiver adopts the first incoming sequence number
    /// instead of expecting zero (see [`ArqRx::new_resync`]).
    ///
    /// This is the resume path after host-side session eviction — the
    /// device kept transmitting, only the host forgot where it was.
    pub fn with_arq_resync() -> Self {
        StreamDecoder {
            arq: Some(ArqRx::new_resync()),
            ..StreamDecoder::default()
        }
    }

    /// Whether a [`StreamDecoder::with_arq_resync`] decoder adopted a
    /// mid-stream sequence number. `None` without ARQ; `Some(false)` for
    /// a stream that genuinely started at sequence zero.
    pub fn arq_resynced(&self) -> Option<bool> {
        self.arq.as_ref().map(ArqRx::resynced)
    }

    /// Pushes received bytes, visiting each completed record in order —
    /// the zero-allocation decode ([`Record`] is `Copy`; frame payloads
    /// are borrowed from the decoder's scratch buffer). Malformed or
    /// CRC-failed frames are counted and skipped.
    pub fn push_bytes_with<F: FnMut(Record)>(&mut self, bytes: &[u8], mut sink: F) {
        for &b in bytes {
            if let Some(frame) = self.frames.push_frame(b) {
                consume_frame(
                    &mut self.arq,
                    &mut self.records_ok,
                    &mut self.records_bad,
                    &mut self.crc_failures,
                    frame,
                    &mut sink,
                );
            }
        }
        // A frame attempt that failed its CRC queues its bytes for
        // re-examination inside the frame decoder; drain any frames that
        // completed wholly within those bytes so the burst's records are
        // all delivered before this call returns.
        while let Some(frame) = self.frames.pump() {
            consume_frame(
                &mut self.arq,
                &mut self.records_ok,
                &mut self.records_bad,
                &mut self.crc_failures,
                frame,
                &mut sink,
            );
        }
    }

    /// Pushes received bytes; returns the records completed by them.
    ///
    /// Owned-`Vec` convenience over [`StreamDecoder::push_bytes_with`].
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Vec<Record> {
        let mut out = Vec::new();
        self.push_bytes_with(bytes, |rec| out.push(rec));
        out
    }

    /// The acknowledgement payload to frame and send back to the device,
    /// when the decoder terminates the ARQ transport.
    pub fn ack_payload(&self) -> Option<[u8; arq::ACK_LEN]> {
        self.arq.as_ref().map(ArqRx::ack_payload)
    }

    /// Receive-side link-quality counters, when the decoder terminates
    /// the ARQ transport.
    pub fn arq_quality(&self) -> Option<LinkQuality> {
        self.arq.as_ref().map(ArqRx::quality)
    }

    /// Records parsed successfully.
    pub fn records_ok(&self) -> u64 {
        self.records_ok
    }

    /// Payloads that failed record parsing.
    pub fn records_bad(&self) -> u64 {
        self.records_bad
    }

    /// Frames dropped at the link layer for CRC failures.
    pub fn crc_failures(&self) -> u64 {
        self.crc_failures
    }

    /// Link-layer frames decoded with a valid CRC.
    pub fn link_frames_ok(&self) -> u64 {
        self.frames.frames_ok()
    }

    /// Link-layer bytes skipped while hunting for sync.
    pub fn link_bytes_skipped(&self) -> u64 {
        self.frames.bytes_skipped()
    }

    /// Link-layer byte-conservation terms, `(skipped, accepted, pending)`
    /// — see [`FrameDecoder::pending_bytes`]. The fuzz harness checks
    /// that they sum to the bytes pushed.
    pub fn link_byte_accounting(&self) -> (u64, u64, u64) {
        (
            self.frames.bytes_skipped(),
            self.frames.bytes_accepted(),
            self.frames.pending_bytes(),
        )
    }
}

/// Routes one completed link frame into the ARQ/record layers.
///
/// Free function over disjoint [`StreamDecoder`] fields because the
/// frame payload borrows the frame decoder's scratch buffer.
fn consume_frame<F: FnMut(Record)>(
    arq: &mut Option<ArqRx>,
    records_ok: &mut u64,
    records_bad: &mut u64,
    crc_failures: &mut u64,
    frame: Result<&[u8], HwError>,
    sink: &mut F,
) {
    match frame {
        Ok(payload) => match arq.as_mut() {
            Some(rx) => match arq::decode_data(payload) {
                Some((seq, inner)) => {
                    rx.on_data(seq, inner, |rec| match parse_record(rec) {
                        Ok(rec) => {
                            *records_ok += 1;
                            sink(rec);
                        }
                        Err(_) => *records_bad += 1,
                    });
                }
                None => *records_bad += 1,
            },
            None => match parse_record(payload) {
                Ok(rec) => {
                    *records_ok += 1;
                    sink(rec);
                }
                Err(_) => *records_bad += 1,
            },
        },
        Err(HwError::LinkCrc { .. }) => *crc_failures += 1,
        Err(_) => *records_bad += 1,
    }
}

/// One timed stage of a host-side run with the executor counters it
/// consumed — the worker-pool analogue of a device [`StateRecord`].
///
/// The host instruments two kinds of activity: what the *device* did
/// (the records above) and what the *evaluation executor* did while
/// replaying or simulating it. A stage is a named span of wall-clock
/// time (`serial pass`, `parallel pass`, …) paired with a
/// [`distscroll_par::PoolStats`] snapshot; the `--bench-out` report
/// embeds one object per stage, and the CLI prints the rendered line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorStage {
    /// Stage name (stable, lowercase; becomes the JSON `stage` field).
    pub stage: &'static str,
    /// Wall-clock seconds the stage took.
    pub wall_s: f64,
    /// Executor counters accumulated during the stage (callers reset
    /// the pool stats when the stage starts).
    pub stats: distscroll_par::PoolStats,
}

impl ExecutorStage {
    /// Captures the current executor counters as the closing snapshot
    /// of a stage that took `wall_s` seconds.
    pub fn capture(stage: &'static str, wall_s: f64) -> ExecutorStage {
        ExecutorStage {
            stage,
            wall_s,
            stats: distscroll_par::pool_stats(),
        }
    }

    /// One-line human rendering, e.g. for stderr progress output.
    pub fn render(&self) -> String {
        format!(
            "executor[{}]: {:.2} s wall, {}",
            self.stage, self.wall_s, self.stats
        )
    }

    /// The stage as a JSON object (hand-rendered — the workspace has no
    /// JSON dependency; stage names and counters need no escaping).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"stage\": \"{}\", \"wall_s\": {:.4}, \"executor\": {{\
             \"workers_spawned\": {}, \"jobs_submitted\": {}, \"tasks_executed\": {}, \
             \"inline_claims\": {}, \"helper_steals\": {}, \"peak_live\": {}}}}}",
            self.stage,
            self.wall_s,
            self.stats.workers_spawned,
            self.stats.jobs_submitted,
            self.stats.tasks_executed,
            self.stats.inline_claims,
            self.stats.helper_steals,
            self.stats.peak_live,
        )
    }
}

/// Process-wide link-quality totals, merged across every ARQ session the
/// harness runs (the fault-injection experiment folds each swept link
/// configuration in here). Mirrors `distscroll_par::pool_stats`: cheap
/// relaxed atomics, captured into the `--bench-out` report.
static LQ_SENT: AtomicU64 = AtomicU64::new(0);
static LQ_RETRANSMITTED: AtomicU64 = AtomicU64::new(0);
static LQ_ACKED: AtomicU64 = AtomicU64::new(0);
static LQ_EXPIRED: AtomicU64 = AtomicU64::new(0);
static LQ_SHED_STATE: AtomicU64 = AtomicU64::new(0);
static LQ_DELIVERED: AtomicU64 = AtomicU64::new(0);
static LQ_DUPLICATES: AtomicU64 = AtomicU64::new(0);
static LQ_OUT_OF_ORDER: AtomicU64 = AtomicU64::new(0);

/// Folds one session's counters into the process-wide totals.
pub fn record_link_quality(q: &LinkQuality) {
    LQ_SENT.fetch_add(q.sent, Ordering::Relaxed);
    LQ_RETRANSMITTED.fetch_add(q.retransmitted, Ordering::Relaxed);
    LQ_ACKED.fetch_add(q.acked, Ordering::Relaxed);
    LQ_EXPIRED.fetch_add(q.expired, Ordering::Relaxed);
    LQ_SHED_STATE.fetch_add(q.shed_state, Ordering::Relaxed);
    LQ_DELIVERED.fetch_add(q.delivered, Ordering::Relaxed);
    LQ_DUPLICATES.fetch_add(q.duplicates, Ordering::Relaxed);
    LQ_OUT_OF_ORDER.fetch_add(q.out_of_order, Ordering::Relaxed);
}

/// A snapshot of the process-wide link-quality totals.
pub fn link_quality_totals() -> LinkQuality {
    LinkQuality {
        sent: LQ_SENT.load(Ordering::Relaxed),
        retransmitted: LQ_RETRANSMITTED.load(Ordering::Relaxed),
        acked: LQ_ACKED.load(Ordering::Relaxed),
        expired: LQ_EXPIRED.load(Ordering::Relaxed),
        shed_state: LQ_SHED_STATE.load(Ordering::Relaxed),
        delivered: LQ_DELIVERED.load(Ordering::Relaxed),
        duplicates: LQ_DUPLICATES.load(Ordering::Relaxed),
        out_of_order: LQ_OUT_OF_ORDER.load(Ordering::Relaxed),
    }
}

/// Counters as a JSON object (hand-rendered — the workspace has no JSON
/// dependency), for the `link_quality` section of the bench report.
pub fn link_quality_json(q: &LinkQuality) -> String {
    format!(
        "{{\"sent\": {}, \"retransmitted\": {}, \"acked\": {}, \"expired\": {}, \
         \"shed_state\": {}, \"delivered\": {}, \"duplicates\": {}, \"out_of_order\": {}}}",
        q.sent,
        q.retransmitted,
        q.acked,
        q.expired,
        q.shed_state,
        q.delivered,
        q.duplicates,
        q.out_of_order,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use distscroll_hw::link::encode_frame;

    #[test]
    fn state_record_round_trips() {
        let payload = [b'T', 0x12, 0x34, 0x01, 0x42, 3, 1, 5];
        let rec = parse_record(&payload).unwrap();
        assert_eq!(
            rec,
            Record::State(StateRecord {
                stamp: 0x1234,
                code: 0x0142,
                island: Some(3),
                level: 1,
                highlighted: 5
            })
        );
        assert_eq!(rec.stamp(), 0x1234);
    }

    #[test]
    fn island_sentinel_decodes_to_none() {
        let payload = [b'T', 0, 0, 0, 0, 0xff, 0, 0];
        let Record::State(s) = parse_record(&payload).unwrap() else {
            panic!("state expected")
        };
        assert_eq!(s.island, None);
    }

    #[test]
    fn event_record_round_trips() {
        let payload = [b'E', 0, 7, b'H', 4];
        let rec = parse_record(&payload).unwrap();
        assert_eq!(
            rec,
            Record::Event(EventRecord {
                stamp: 7,
                kind: EventKind::Highlight,
                aux: 4
            })
        );
    }

    #[test]
    fn malformed_payloads_error_without_panicking() {
        assert_eq!(parse_record(&[]), Err(ProtocolError::Empty));
        assert_eq!(
            parse_record(&[b'X', 1]),
            Err(ProtocolError::UnknownKind { kind: b'X' })
        );
        assert_eq!(
            parse_record(&[b'T', 1, 2]),
            Err(ProtocolError::BadLength {
                kind: b'T',
                got: 2,
                expected: 7
            })
        );
        assert_eq!(
            parse_record(&[b'E', 0, 0, b'?', 0]),
            Err(ProtocolError::UnknownEventTag { tag: b'?' })
        );
    }

    #[test]
    fn all_firmware_tags_decode() {
        for tag in [b'H', b'A', b'S', b'B', b'<', b'>', b'!'] {
            assert!(EventKind::from_tag(tag).is_some(), "tag {tag}");
        }
    }

    #[test]
    fn executor_stage_renders_and_serializes() {
        let stage = ExecutorStage {
            stage: "parallel",
            wall_s: 1.25,
            stats: distscroll_par::PoolStats {
                workers_spawned: 3,
                jobs_submitted: 7,
                tasks_executed: 40,
                inline_claims: 30,
                helper_steals: 10,
                live: 0,
                peak_live: 4,
            },
        };
        let line = stage.render();
        for needle in [
            "executor[parallel]",
            "1.25 s",
            "7 jobs",
            "40 tasks",
            "peak 4 live",
        ] {
            assert!(line.contains(needle), "render missing {needle:?}: {line}");
        }
        let json = stage.to_json();
        for needle in [
            "\"stage\": \"parallel\"",
            "\"wall_s\": 1.2500",
            "\"tasks_executed\": 40",
            "\"inline_claims\": 30",
            "\"helper_steals\": 10",
            "\"peak_live\": 4",
            "\"workers_spawned\": 3",
        ] {
            assert!(json.contains(needle), "json missing {needle:?}: {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn executor_stage_capture_reads_live_counters() {
        let stage = ExecutorStage::capture("probe", 0.5);
        assert_eq!(stage.stage, "probe");
        let fresh = distscroll_par::pool_stats();
        assert!(fresh.tasks_executed >= stage.stats.tasks_executed);
    }

    #[test]
    fn arq_decoder_reorders_dedups_and_acks() {
        use distscroll_hw::arq::{ArqClass, ArqTx};
        // The device side queues three records; we scramble and
        // duplicate their wire frames before they reach the host.
        let mut tx = ArqTx::new();
        for stamp in 0..3u8 {
            tx.enqueue(ArqClass::Event, &[b'E', 0, stamp, b'B', 0], 0);
        }
        let mut wires: Vec<Vec<u8>> = Vec::new();
        tx.service(0, |w| wires.push(w.to_vec()));
        let mut dec = StreamDecoder::with_arq();
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(&wires[0]));
        stream.extend_from_slice(&encode_frame(&wires[2])); // ahead of a gap
        stream.extend_from_slice(&encode_frame(&wires[1])); // fills the gap
        stream.extend_from_slice(&encode_frame(&wires[0])); // duplicate
        let records = dec.push_bytes(&stream);
        let stamps: Vec<u16> = records.iter().map(Record::stamp).collect();
        assert_eq!(stamps, vec![0, 1, 2], "in order, exactly once");
        let q = dec.arq_quality().unwrap();
        assert_eq!(q.delivered, 3);
        assert_eq!(q.duplicates, 1);
        assert_eq!(q.out_of_order, 1);
        // The ack covers all three: cumulative 2, nothing parked.
        let ack = dec.ack_payload().unwrap();
        let (cum, bitmap) = distscroll_hw::arq::decode_ack(&ack).unwrap();
        assert_eq!(cum.raw(), 2);
        assert_eq!(bitmap, 0);
        tx.on_ack(cum, bitmap);
        assert_eq!(tx.in_flight(), 0);
    }

    #[test]
    fn resync_decoder_resumes_midstream_without_duplicates() {
        use distscroll_hw::arq::{ArqClass, ArqTx};
        // A device transmits six records; the host decodes the first
        // three, is evicted, and a fresh resync decoder picks up the
        // rest of the stream — no record is lost or double-delivered.
        let mut tx = ArqTx::new();
        let stamps = |dec: &mut StreamDecoder, wires: &[Vec<u8>]| -> Vec<u16> {
            let mut bytes = Vec::new();
            for w in wires {
                bytes.extend_from_slice(&encode_frame(w));
            }
            dec.push_bytes(&bytes).iter().map(Record::stamp).collect()
        };
        for stamp in 0..3u8 {
            tx.enqueue(ArqClass::Event, &[b'E', 0, stamp, b'B', 0], 0);
        }
        let mut wires = Vec::new();
        tx.service(0, |w| wires.push(w.to_vec()));
        let mut first = StreamDecoder::with_arq();
        assert_eq!(stamps(&mut first, &wires), vec![0, 1, 2]);
        let ack = first.ack_payload().unwrap();
        let (cum, bitmap) = distscroll_hw::arq::decode_ack(&ack).unwrap();
        tx.on_ack(cum, bitmap);
        drop(first); // session evicted: receiver state gone
        for stamp in 3..6u8 {
            tx.enqueue(ArqClass::Event, &[b'E', 0, stamp, b'B', 0], 1);
        }
        wires.clear();
        tx.service(1, |w| wires.push(w.to_vec()));
        let mut resumed = StreamDecoder::with_arq_resync();
        assert_eq!(stamps(&mut resumed, &wires), vec![3, 4, 5]);
        assert_eq!(resumed.arq_resynced(), Some(true));
        let q = resumed.arq_quality().unwrap();
        assert_eq!(q.delivered, 3);
        assert_eq!(q.duplicates, 0);
        // A zero-expecting decoder parks the same frames behind a hole
        // (seq 0..2) that will never fill — that is the stall resync
        // fixes.
        let mut stale = StreamDecoder::with_arq();
        assert!(stamps(&mut stale, &wires).is_empty());
    }

    #[test]
    fn plain_decoder_has_no_arq_surface() {
        let dec = StreamDecoder::new();
        assert_eq!(dec.ack_payload(), None);
        assert!(dec.arq_quality().is_none());
    }

    #[test]
    fn link_quality_totals_accumulate_and_serialize() {
        let contribution = LinkQuality {
            sent: 11,
            retransmitted: 2,
            acked: 9,
            expired: 1,
            shed_state: 3,
            delivered: 8,
            duplicates: 4,
            out_of_order: 5,
        };
        let before = link_quality_totals();
        record_link_quality(&contribution);
        let after = link_quality_totals();
        assert!(after.sent >= before.sent + 11);
        assert!(after.delivered >= before.delivered + 8);
        let json = link_quality_json(&contribution);
        for needle in [
            "\"sent\": 11",
            "\"retransmitted\": 2",
            "\"acked\": 9",
            "\"expired\": 1",
            "\"shed_state\": 3",
            "\"delivered\": 8",
            "\"duplicates\": 4",
            "\"out_of_order\": 5",
        ] {
            assert!(json.contains(needle), "json missing {needle:?}: {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn stream_decoder_counts_and_collects() {
        let mut dec = StreamDecoder::new();
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(&[b'T', 0, 1, 0, 100, 2, 0, 3]));
        stream.extend_from_slice(&encode_frame(&[b'E', 0, 2, b'A', 1]));
        stream.extend_from_slice(&encode_frame(&[b'Z', 9, 9])); // unknown kind
        let mut bad_crc = encode_frame(&[b'T', 0, 3, 0, 100, 2, 0, 3]);
        let len = bad_crc.len();
        bad_crc[len - 1] ^= 0xff;
        stream.extend_from_slice(&bad_crc);
        let records = dec.push_bytes(&stream);
        assert_eq!(records.len(), 2);
        assert_eq!(dec.records_ok(), 2);
        assert_eq!(dec.records_bad(), 1);
        assert_eq!(dec.crc_failures(), 1);
    }
}
