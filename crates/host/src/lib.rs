//! The host-PC side of the DistScroll's wireless link.
//!
//! The authors built "a self contained interaction device that can be
//! wirelessly linked to a PC" (paper, Section 3.2) and used the PC for
//! instrumentation: the same role this crate plays for the simulated
//! prototype. It consumes the raw radio byte stream and turns it into
//! study data:
//!
//! * [`telemetry`] — the wire protocol: typed state (`T`) and event
//!   (`E`) records, and a stream decoder that stacks on the link-layer
//!   frame decoder,
//! * [`session`] — a session log: ingests records, reconstructs the
//!   timeline (the device stamps records with its tick counter),
//!   derives per-trial measures (selection times, scroll paths,
//!   direction reversals) and exports CSV,
//! * [`pda`] — the §7 PDA add-on's host-rendered menu screen,
//! * [`replay`] — converts logged ADC codes back to distances through
//!   the calibration curve and renders the hand's trajectory as an
//!   ASCII sparkline — the "what did the participant actually do"
//!   view an experimenter wants.
//!
//! # Example
//!
//! ```
//! use distscroll_host::telemetry::{Record, StreamDecoder};
//! use distscroll_hw::link::encode_frame;
//!
//! let mut dec = StreamDecoder::new();
//! // A state record as the firmware encodes it.
//! let frame = encode_frame(&[b'T', 0, 10, 0x01, 0x42, 3, 0, 5]);
//! let records = dec.push_bytes(&frame);
//! assert!(matches!(records[0], Record::State(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pda;
pub mod replay;
pub mod session;
pub mod telemetry;
