//! The PDA screen for the §7 add-on: host-rendered menu UI.
//!
//! "To further investigate user acceptance and possible applications, we
//! also intend to construct a minimized version of the DistScroll as
//! add-on for a PDA" (paper, Section 7). The add-on keeps the sensor,
//! buttons and radio but drops the two small panels; the PDA renders the
//! menu from the telemetry stream instead — more screen real estate, at
//! the price of putting the radio's latency *inside* the user's
//! perception–action loop.
//!
//! [`PdaScreen`] consumes decoded [`Record`]s and maintains the view the
//! PDA shows: current highlight, menu level, and (with labels supplied)
//! a rendered list.

use crate::telemetry::{EventKind, Record};

/// Visible menu rows on a pad-sized screen (vs. 5 on the BT96040).
pub const PDA_VISIBLE_LINES: usize = 12;

/// The host-rendered menu view.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PdaScreen {
    highlighted: usize,
    level: usize,
    records_seen: u64,
    stale: bool,
}

impl PdaScreen {
    /// A blank screen awaiting telemetry.
    pub fn new() -> Self {
        PdaScreen {
            stale: true,
            ..PdaScreen::default()
        }
    }

    /// Ingests one decoded record, updating the view.
    pub fn ingest(&mut self, record: &Record) {
        self.records_seen += 1;
        match record {
            Record::State(s) => {
                self.highlighted = usize::from(s.highlighted);
                self.level = usize::from(s.level);
                self.stale = false;
            }
            Record::Event(e) => match e.kind {
                EventKind::Highlight => {
                    self.highlighted = usize::from(e.aux);
                    self.stale = false;
                }
                EventKind::EnteredSubmenu => {
                    self.level += 1;
                    self.highlighted = 0;
                }
                EventKind::WentBack => {
                    self.level = self.level.saturating_sub(1);
                }
                _ => {}
            },
        }
    }

    /// Ingests a batch of records.
    pub fn ingest_all<'a, I: IntoIterator<Item = &'a Record>>(&mut self, records: I) {
        for r in records {
            self.ingest(r);
        }
    }

    /// The entry the PDA currently shows as highlighted.
    pub fn highlighted(&self) -> usize {
        self.highlighted
    }

    /// The menu depth the PDA currently shows.
    pub fn level(&self) -> usize {
        self.level
    }

    /// `true` before the first state-bearing record arrives.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Records consumed.
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// Renders the list view with the given labels: a `>` marker, a
    /// window of [`PDA_VISIBLE_LINES`] rows around the highlight.
    pub fn render(&self, labels: &[&str]) -> String {
        let n = labels.len();
        let start = if n <= PDA_VISIBLE_LINES {
            0
        } else {
            self.highlighted
                .saturating_sub(PDA_VISIBLE_LINES / 2)
                .min(n - PDA_VISIBLE_LINES)
        };
        let mut out = String::new();
        for (i, label) in labels
            .iter()
            .enumerate()
            .skip(start)
            .take(PDA_VISIBLE_LINES)
        {
            out.push(if i == self.highlighted { '>' } else { ' ' });
            out.push_str(label);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{EventRecord, StateRecord};

    fn state(highlighted: u8, level: u8) -> Record {
        Record::State(StateRecord {
            stamp: 0,
            code: 100,
            island: Some(0),
            highlighted,
            level,
        })
    }

    fn event(kind: EventKind, aux: u8) -> Record {
        Record::Event(EventRecord {
            stamp: 0,
            kind,
            aux,
        })
    }

    #[test]
    fn state_records_drive_the_view() {
        let mut s = PdaScreen::new();
        assert!(s.is_stale());
        s.ingest(&state(4, 1));
        assert!(!s.is_stale());
        assert_eq!(s.highlighted(), 4);
        assert_eq!(s.level(), 1);
    }

    #[test]
    fn highlight_events_update_between_state_records() {
        let mut s = PdaScreen::new();
        s.ingest(&state(2, 0));
        s.ingest(&event(EventKind::Highlight, 6));
        assert_eq!(s.highlighted(), 6);
    }

    #[test]
    fn submenu_and_back_events_track_the_level() {
        let mut s = PdaScreen::new();
        s.ingest(&state(3, 0));
        s.ingest(&event(EventKind::EnteredSubmenu, 0));
        assert_eq!(s.level(), 1);
        assert_eq!(s.highlighted(), 0);
        s.ingest(&event(EventKind::WentBack, 0));
        assert_eq!(s.level(), 0);
        s.ingest(&event(EventKind::WentBack, 0));
        assert_eq!(s.level(), 0, "level never underflows");
    }

    #[test]
    fn render_marks_and_windows() {
        let mut s = PdaScreen::new();
        let labels: Vec<String> = (0..20).map(|i| format!("Entry {i}")).collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        s.ingest(&state(15, 0));
        let view = s.render(&refs);
        assert!(view.contains(">Entry 15"));
        assert_eq!(view.lines().count(), PDA_VISIBLE_LINES);
        assert!(!view.contains("Entry 0\n"), "window scrolled past the top");
    }
}
