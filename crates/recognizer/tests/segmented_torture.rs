//! Property torture for the [`Segmented`] recognizer: arbitrary code
//! streams never panic, output codes stay in ADC range, and replay is
//! deterministic — the state machine is a pure function of its stream.

use distscroll_recognizer::{Recognizer, Segmented, SegmentedConfig};
use distscroll_sensors::calibrate::{fit_inverse_curve, InverseCurveFit};
use distscroll_sensors::gp2d120::ideal_voltage;
use proptest::prelude::*;

fn curve() -> InverseCurveFit {
    let pts: Vec<(f64, f64)> = (4..=30)
        .map(|d| (f64::from(d), ideal_voltage(f64::from(d))))
        .collect();
    fit_inverse_curve(&pts).expect("ideal curve fits")
}

fn seg() -> Segmented {
    Segmented::new(SegmentedConfig {
        curve: curve(),
        near_cm: 4.0,
        far_cm: 30.0,
        tick_ms: 10,
    })
}

proptest! {
    // Any u16 stream — in-band, fold-back, rail values, garbage far
    // beyond the 10-bit converter — runs to completion with in-range
    // output.
    #[test]
    fn arbitrary_u16_streams_never_panic(
        stream in proptest::collection::vec(any::<u16>(), 1..400),
    ) {
        let mut s = seg();
        for (t, &raw) in stream.iter().enumerate() {
            let code = s.process(raw, t as u64);
            prop_assert!(code <= 1023);
        }
    }

    // Two instances fed the same stream agree tick for tick, and a
    // reset instance replays the stream identically to a fresh one.
    #[test]
    fn replay_is_deterministic_and_reset_is_complete(
        stream in proptest::collection::vec(0u16..=1023, 1..400),
    ) {
        let mut a = seg();
        let mut b = seg();
        for (t, &raw) in stream.iter().enumerate() {
            prop_assert_eq!(a.process(raw, t as u64), b.process(raw, t as u64));
        }
        // A full reset must erase every trace of the first pass: replay
        // the stream on the used instance against a fresh one.
        a.reset();
        let mut fresh = seg();
        for (t, &raw) in stream.iter().enumerate() {
            prop_assert_eq!(a.process(raw, t as u64), fresh.process(raw, t as u64));
        }
    }
}
