//! A/B equivalence: [`ClassicChain`] against a verbatim replica of the
//! pre-refactor inline firmware chain.
//!
//! The refactor moved the slew gate → median → EMA chain out of
//! `crates/core/src/firmware.rs` and behind the [`Recognizer`] trait.
//! The byte-identity contract on the default path rests on the two
//! performing the exact same `f64` operations in the same order, so
//! this suite replays deterministic and property-generated code streams
//! through both and demands tick-for-tick identical output — in both
//! gating modes, and across a mid-stream reset.

use distscroll_recognizer::{ClassicChain, ClassicConfig, Recognizer, SLEW_GIVE_UP_TICKS};
use distscroll_sensors::filter::{Ema, MedianFilter, SlewGate};
use proptest::prelude::*;

/// The pre-refactor inline chain, copied operation for operation from
/// the firmware's tick step 1 as it stood before the extraction
/// (`git show`: `x = slew.push(x)` under the profile gate, then
/// `median.push`, then `ema.push`, then round-and-clamp to a code).
struct InlineChain {
    median: MedianFilter,
    ema: Ema,
    slew: SlewGate,
    gate_on: bool,
}

impl InlineChain {
    fn new(cfg: &ClassicConfig) -> Self {
        InlineChain {
            median: MedianFilter::new(cfg.median_len),
            ema: Ema::new(cfg.ema_alpha),
            slew: SlewGate::new(cfg.slew_max_codes, SLEW_GIVE_UP_TICKS),
            gate_on: cfg.slew_enabled,
        }
    }

    fn tick(&mut self, raw: u16) -> u16 {
        let mut x = f64::from(raw);
        if self.gate_on {
            x = self.slew.push(x);
        }
        x = self.median.push(x);
        x = self.ema.push(x);
        x.round().clamp(0.0, 1023.0) as u16
    }

    fn reset(&mut self) {
        self.median.reset();
        self.ema.reset();
        self.slew.reset();
    }
}

/// Replays one stream through both implementations and asserts
/// tick-for-tick equality.
fn assert_equivalent(cfg: &ClassicConfig, stream: &[u16]) {
    let mut chain = ClassicChain::new(cfg);
    let mut inline = InlineChain::new(cfg);
    for (t, &raw) in stream.iter().enumerate() {
        let a = chain.process(raw, t as u64);
        let b = inline.tick(raw);
        assert_eq!(a, b, "tick {t}: chain {a} != inline {b} on raw {raw}");
    }
}

/// A deterministic stream exercising every regime the firmware sees:
/// settled hold, slow drift, fold-back-style jumps, and ADC extremes.
fn torture_stream() -> Vec<u16> {
    let mut s = Vec::new();
    s.extend(std::iter::repeat_n(500u16, 30));
    s.extend((0..60).map(|i| 500 + i * 3));
    s.extend(std::iter::repeat_n(900u16, 12)); // held outlier: gate gives up
    s.extend([0, 1023, 0, 1023, 512]); // rail-to-rail thrash
    s.extend((0..40).map(|i| 512 + ((i * 37) % 200)));
    s
}

#[test]
fn paper_config_matches_inline_chain_tick_for_tick() {
    assert_equivalent(&ClassicConfig::paper(), &torture_stream());
}

#[test]
fn open_gate_config_matches_inline_chain_tick_for_tick() {
    let cfg = ClassicConfig {
        slew_enabled: false,
        ..ClassicConfig::paper()
    };
    assert_equivalent(&cfg, &torture_stream());
}

#[test]
fn mid_stream_reset_stays_equivalent() {
    let cfg = ClassicConfig::paper();
    let mut chain = ClassicChain::new(&cfg);
    let mut inline = InlineChain::new(&cfg);
    let stream = torture_stream();
    for (t, &raw) in stream.iter().enumerate() {
        if t == stream.len() / 2 {
            chain.reset();
            inline.reset();
        }
        assert_eq!(chain.process(raw, t as u64), inline.tick(raw), "tick {t}");
    }
}

proptest! {
    // Arbitrary ADC streams: equivalence holds on both gating modes,
    // for any window length the profile validator would accept.
    #[test]
    fn arbitrary_streams_are_equivalent(
        stream in proptest::collection::vec(0u16..=1023, 1..300),
        half_window in 0usize..5,
        gate_on in any::<bool>(),
    ) {
        let cfg = ClassicConfig {
            // Odd lengths 1..=9 — the set the profile validator accepts.
            median_len: 2 * half_window + 1,
            slew_enabled: gate_on,
            ..ClassicConfig::paper()
        };
        assert_equivalent(&cfg, &stream);
    }

    // Replay determinism: the chain is a pure function of its input
    // stream — two instances fed the same codes agree forever.
    #[test]
    fn replay_is_deterministic(stream in proptest::collection::vec(any::<u16>(), 1..300)) {
        let cfg = ClassicConfig::paper();
        let mut a = ClassicChain::new(&cfg);
        let mut b = ClassicChain::new(&cfg);
        for (t, &raw) in stream.iter().enumerate() {
            prop_assert_eq!(a.process(raw, t as u64), b.process(raw, t as u64));
        }
    }

    // Torture: the chain never panics and always yields a valid ADC
    // code, even on raw values far beyond the 10-bit converter.
    #[test]
    fn arbitrary_u16_streams_never_panic(
        stream in proptest::collection::vec(any::<u16>(), 1..300),
    ) {
        let mut chain = ClassicChain::new(&ClassicConfig::paper());
        for (t, &raw) in stream.iter().enumerate() {
            let code = chain.process(raw, t as u64);
            prop_assert!(code <= 1023);
        }
    }
}
