//! The recognizer layer: everything between a raw ADC code and the code
//! the island mapping consumes.
//!
//! The paper's prototype wires its defense against sensor noise, hand
//! tremor and the <4 cm fold-back alias straight into the firmware loop
//! as a filter chain (slew gate → median → EMA, Section 4.2). This crate
//! lifts that pipeline into a first-class, swappable component with two
//! implementations:
//!
//! * [`ClassicChain`] — the paper's chain, extracted verbatim. Fed the
//!   same raw codes it performs the exact same `f64` operations in the
//!   same order as the pre-refactor inline code, so a device running it
//!   is byte-identical to one built before the refactor.
//! * [`Segmented`] — the stream-segmented recognizer the ROADMAP calls
//!   for: raw samples are grouped into motion streams split on idle gaps
//!   and fold-back discontinuities, a state machine classifies each
//!   stream (deliberate submovement vs. physiological tremor vs.
//!   fold-back ghost), and output is rate-normalized — fractional
//!   accumulation with non-deliberate updates coalesced at the display
//!   redraw cadence.
//!
//! Both implement [`Recognizer`] and report their own cycle budget and
//! RAM footprint through named per-stage [`StageCost`] constants, so the
//! firmware's schedulability analysis and PIC RAM accounting stop
//! hiding filter costs inside magic literals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classic;
mod segmented;

pub use classic::{ClassicChain, ClassicConfig, CLASSIC_STAGES, SLEW_GIVE_UP_TICKS};
pub use segmented::{Segmented, SegmentedConfig, StreamState, SEGMENTED_STAGES};

/// The budgeted cost of one recognizer stage, as the C firmware would
/// account for it: MCU cycles charged per sample and bytes of PIC RAM
/// the stage's state occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCost {
    /// Stage name, for schedulability reports.
    pub name: &'static str,
    /// Cycles charged per processed sample.
    pub cycles: u64,
    /// Bytes of RAM the stage's fixed state costs (window buffers that
    /// scale with configuration are reported by [`Recognizer::ram_bytes`]
    /// on top of this).
    pub ram_bytes: usize,
}

/// Sums the per-sample cycle budget of a stage list.
#[must_use]
pub fn cycle_budget(stages: &[StageCost]) -> u64 {
    stages.iter().map(|s| s.cycles).sum()
}

/// A distance-input recognizer: consumes one raw ADC code per firmware
/// tick and yields the code the island mapping should see.
///
/// Implementations are pure state machines over their inputs — no
/// clocks, no randomness — so identical input streams yield identical
/// output streams (the property the replay-determinism proptests pin
/// down).
pub trait Recognizer {
    /// Short identifier for reports and benches.
    fn name(&self) -> &'static str;

    /// Processes one raw sample taken at `tick` and returns the code to
    /// feed the island lookup.
    fn process(&mut self, raw: u16, tick: u64) -> u16;

    /// Clears all stream state (the firmware calls this when the island
    /// map is rebuilt for a new menu level).
    fn reset(&mut self);

    /// The per-stage cost table. Stages are always charged, whether or
    /// not a runtime branch skips their work this tick — the C code is
    /// compiled in either way, and a constant budget is what the
    /// schedulability analysis needs.
    fn stage_costs(&self) -> &'static [StageCost];

    /// Total cycles charged per processed sample.
    fn cycle_budget(&self) -> u64 {
        cycle_budget(self.stage_costs())
    }

    /// Bytes of PIC RAM the recognizer's state costs, including
    /// configuration-dependent window buffers.
    fn ram_bytes(&self) -> usize;
}

/// A concrete recognizer chosen by the device profile — an enum rather
/// than a trait object so the firmware stays `Debug` and statically
/// dispatched on the hot path.
#[derive(Debug, Clone)]
pub enum AnyRecognizer {
    /// The paper's filter chain.
    Classic(ClassicChain),
    /// The stream-segmented state machine.
    Segmented(Box<Segmented>),
}

impl Recognizer for AnyRecognizer {
    fn name(&self) -> &'static str {
        match self {
            AnyRecognizer::Classic(r) => r.name(),
            AnyRecognizer::Segmented(r) => r.name(),
        }
    }

    fn process(&mut self, raw: u16, tick: u64) -> u16 {
        match self {
            AnyRecognizer::Classic(r) => r.process(raw, tick),
            AnyRecognizer::Segmented(r) => r.process(raw, tick),
        }
    }

    fn reset(&mut self) {
        match self {
            AnyRecognizer::Classic(r) => r.reset(),
            AnyRecognizer::Segmented(r) => r.reset(),
        }
    }

    fn stage_costs(&self) -> &'static [StageCost] {
        match self {
            AnyRecognizer::Classic(r) => r.stage_costs(),
            AnyRecognizer::Segmented(r) => r.stage_costs(),
        }
    }

    fn ram_bytes(&self) -> usize {
        match self {
            AnyRecognizer::Classic(r) => r.ram_bytes(),
            AnyRecognizer::Segmented(r) => r.ram_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_budget_sums_stages() {
        assert_eq!(
            cycle_budget(CLASSIC_STAGES),
            CLASSIC_STAGES.iter().map(|s| s.cycles).sum::<u64>()
        );
        assert!(cycle_budget(SEGMENTED_STAGES) > 0);
    }

    #[test]
    fn any_recognizer_dispatches_names() {
        let c = AnyRecognizer::Classic(ClassicChain::new(&ClassicConfig::paper()));
        assert_eq!(c.name(), "classic-chain");
        assert!(c.cycle_budget() > 0);
        assert!(c.ram_bytes() > 0);
    }
}
