//! The stream-segmented recognizer: segmentation → classification →
//! rate-normalized emission.
//!
//! Three composable stages, in the style of Fuchsia's input-pipeline
//! gesture recognizers (each state owns its admission predicate and its
//! exit events):
//!
//! 1. **Stream segmentation.** Raw ADC codes are converted through the
//!    boot-calibrated sensor curve into distances and grouped into
//!    motion streams. A stream closes on an *idle gap* (the hand held
//!    still, or readings out of the usable band) and splits on a
//!    *fold-back discontinuity* — a per-tick displacement no hand can
//!    produce, which is how the <4 cm alias region announces itself.
//!    A 3-tap median inside this stage absorbs single-sample spikes
//!    without hiding the sensor's ~38 ms sample-and-hold structure.
//! 2. **Intent classification.** A five-state machine — Idle →
//!    Examining → Deliberate / Tremor / FoldBack — separates
//!    intentional submovements from physiological tremor and fold-back
//!    ghosts. Classifying in *centimetres* instead of ADC codes is the
//!    point: the GP2D120 curve is steep near 4 cm and flat near 30 cm,
//!    so no fixed code threshold (the classic chain's 120-code slew
//!    limit) can distinguish far-band intent from near-band tremor.
//!    Physical thresholds can.
//! 3. **Rate-normalized emission.** The output code is a fractional
//!    (`f64`) accumulator over admitted samples; deliberate motion is
//!    emitted every tick, while tremor/idle refinements are coalesced
//!    at the display-redraw cadence so the highlight cannot flicker
//!    faster than the user can see.
//!
//! The whole pipeline is a pure function of the input stream — no
//! clocks, no randomness — so replaying a stream reproduces the exact
//! segmentation, classification and output (pinned by the proptests).

use distscroll_sensors::calibrate::InverseCurveFit;

use crate::{Recognizer, StageCost};

/// Per-stage costs of the segmented pipeline, measured the same way the
/// classic chain's were: a hand count of the PIC18 instruction sequence
/// each stage compiles to.
pub const SEGMENTED_STAGES: &[StageCost] = &[
    StageCost {
        name: "segmentation",
        cycles: 26,
        // 16-sample distance window + 3-tap spike median. The window
        // must span more than one 8-12 Hz tremor period (160 ms at the
        // 10 ms tick) or oscillation can never show two reversals.
        ram_bytes: 38,
    },
    StageCost {
        name: "classification",
        cycles: 22,
        ram_bytes: 10,
    },
    StageCost {
        name: "emission",
        cycles: 12,
        ram_bytes: 8,
    },
];

/// Fastest per-second hand motion the classifier accepts as physical.
/// Minimum-jerk reaches across the whole 26 cm band peak near
/// 0.9 m/s; anything past this limit inside one tick is an alias.
const MAX_HAND_SPEED_CM_S: f64 = 180.0;

/// Window flatness (peak-to-peak, cm) that counts as "not moving".
const IDLE_RANGE_CM: f64 = 0.12;

/// Displacement from the emitted position that wakes the classifier.
const WAKE_CM: f64 = 0.25;

/// Net one-directional displacement across the window that admits
/// `Deliberate` — about a fifth of one island's slot, so a single-island
/// nudge clears it easily while tremor cannot.
const DELIBERATE_NET_CM: f64 = 0.45;

/// Velocity sign alternations within the window that admit `Tremor`.
/// The 16-sample window spans about 1.4 periods of 9 Hz tremor, so a
/// genuine oscillation shows at least two direction reversals while a
/// single corrective overshoot shows one.
const TREMOR_SIGN_FLIPS: u32 = 2;

/// Peak-to-peak bound (cm) for an oscillation to still count as tremor
/// (8–12 Hz physiological tremor tops out well below one island slot).
const TREMOR_RANGE_CM: f64 = 1.2;

/// Drift of the window mean away from the held position that lets a
/// slow intentional movement escape the `Tremor` hold.
const TREMOR_ESCAPE_CM: f64 = 0.6;

/// How close a post-discontinuity reading must return to the pre-jump
/// position to be recognized as "the hand came back".
const FOLD_RETURN_CM: f64 = 0.9;

/// Self-consistency band for a post-discontinuity candidate stream.
const FOLD_CONSISTENT_CM: f64 = 0.6;

/// Milliseconds of flat readings that close a stream segment.
const IDLE_GAP_MS: u64 = 120;

/// Milliseconds a consistent post-discontinuity stream must persist
/// before it is admitted as a genuine new position. Mirrors the classic
/// slew gate's give-up horizon, but unlike the gate it also demands the
/// candidate be *self-consistent* — a fold-back ghost flickering across
/// alias distances keeps failing the test forever.
const FOLD_RESUME_MS: u64 = 80;

/// Milliseconds between coalesced output refreshes outside deliberate
/// motion — the lower display's redraw cadence.
const COALESCE_MS: u64 = 250;

/// Margin below the near edge / beyond the far edge still treated as
/// part of the usable stream (same acceptance band the firmware applies
/// to its distance estimate).
const NEAR_MARGIN_CM: f64 = 1.0;
const FAR_MARGIN_CM: f64 = 3.0;

/// EMA rates for the fractional output accumulator, per state.
const TRACK_ALPHA_DELIBERATE: f64 = 0.5;
const TRACK_ALPHA_EXAMINING: f64 = 0.3;
const TRACK_ALPHA_SETTLED: f64 = 0.12;

/// The classifier's states. Each state's admission predicate and exit
/// events are documented on the transition logic in
/// [`Segmented::process`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamState {
    /// No motion stream open: the hand is still or out of band.
    #[default]
    Idle,
    /// A stream opened but the evidence is still ambiguous.
    Examining,
    /// A sustained one-directional submovement: track at full rate.
    Deliberate,
    /// Oscillation consistent with physiological tremor: hold the
    /// emitted position, drift only at the coalesced cadence.
    Tremor,
    /// A fold-back discontinuity: hold until the hand provably returns
    /// or a self-consistent new stream earns admission.
    FoldBack,
}

/// Configuration for [`Segmented`].
#[derive(Debug, Clone, Copy)]
pub struct SegmentedConfig {
    /// The boot-calibrated sensor curve (codes → centimetres).
    pub curve: InverseCurveFit,
    /// Near edge of the usable band, cm.
    pub near_cm: f64,
    /// Far edge of the usable band, cm.
    pub far_cm: f64,
    /// Firmware tick period, ms (converts the millisecond horizons
    /// above into tick counts).
    pub tick_ms: u64,
}

/// Small fixed ring of recent in-stream distances.
#[derive(Debug, Clone, Copy, Default)]
struct Window {
    buf: [f64; 16],
    len: usize,
    head: usize,
}

impl Window {
    fn clear(&mut self) {
        self.len = 0;
        self.head = 0;
    }

    fn push(&mut self, d: f64) {
        self.buf[self.head] = d;
        self.head = (self.head + 1) % self.buf.len();
        if self.len < self.buf.len() {
            self.len += 1;
        }
    }

    /// Oldest-to-newest iteration.
    fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        let cap = self.buf.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(move |i| self.buf[(start + i) % cap])
    }

    fn range(&self) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in self.iter() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if self.len == 0 {
            0.0
        } else {
            hi - lo
        }
    }

    fn net(&self) -> f64 {
        let mut first = None;
        let mut last = 0.0;
        for v in self.iter() {
            if first.is_none() {
                first = Some(v);
            }
            last = v;
        }
        first.map_or(0.0, |f| last - f)
    }

    fn mean(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.iter().sum::<f64>() / self.len as f64
    }

    /// Velocity sign alternations, with a deadband so the sensor's
    /// sample-and-hold plateaus don't count as flips.
    fn sign_flips(&self) -> u32 {
        const DEADBAND_CM: f64 = 0.05;
        let mut flips = 0;
        let mut prev: Option<f64> = None;
        let mut prev_sign = 0i8;
        for v in self.iter() {
            if let Some(p) = prev {
                let dv = v - p;
                if dv.abs() > DEADBAND_CM {
                    let sign = if dv > 0.0 { 1 } else { -1 };
                    if prev_sign != 0 && sign != prev_sign {
                        flips += 1;
                    }
                    prev_sign = sign;
                }
            }
            prev = Some(v);
        }
        flips
    }
}

/// The stream-segmented recognizer.
#[derive(Debug, Clone)]
pub struct Segmented {
    cfg: SegmentedConfig,
    state: StreamState,
    /// 3-tap spike median over raw codes (segmentation stage).
    spike: [f64; 3],
    spike_len: usize,
    window: Window,
    /// Last in-stream distance (previous tick), for velocity.
    prev_d: Option<f64>,
    /// Raw code paired with `prev_d`, so admitted positions can be
    /// emitted in code space without inverting the curve.
    prev_code: f64,
    /// Fractional output accumulator (code space).
    track_code: Option<f64>,
    /// The emitted (coalesced) output, code space.
    out_code: f64,
    last_out_tick: u64,
    /// Ticks of flat/out-of-band readings in a row.
    idle_run: u64,
    /// Position held when `Tremor` was entered (cm).
    tremor_anchor_cm: f64,
    /// Pre-discontinuity position (cm) while in `FoldBack`.
    fold_origin_cm: f64,
    /// Post-discontinuity candidate stream (cm + code + run length).
    fold_candidate_cm: Option<f64>,
    fold_candidate_code: f64,
    fold_run: u64,
    /// Derived tick horizons.
    idle_gap_ticks: u64,
    fold_resume_ticks: u64,
    coalesce_ticks: u64,
    max_step_cm: f64,
    // Diagnostics the R1 experiment reports.
    segments_closed: u64,
    ghosts_rejected: u64,
    tremor_ticks: u64,
}

impl Segmented {
    /// Builds the recognizer from the profile's geometry and the
    /// boot-calibrated curve.
    #[must_use]
    pub fn new(cfg: SegmentedConfig) -> Self {
        let tick_ms = cfg.tick_ms.max(1);
        Segmented {
            state: StreamState::Idle,
            spike: [0.0; 3],
            spike_len: 0,
            window: Window::default(),
            prev_d: None,
            prev_code: 0.0,
            track_code: None,
            out_code: 0.0,
            last_out_tick: 0,
            idle_run: 0,
            tremor_anchor_cm: 0.0,
            fold_origin_cm: 0.0,
            fold_candidate_cm: None,
            fold_candidate_code: 0.0,
            fold_run: 0,
            idle_gap_ticks: IDLE_GAP_MS.div_ceil(tick_ms).max(1),
            fold_resume_ticks: FOLD_RESUME_MS.div_ceil(tick_ms).max(1),
            coalesce_ticks: COALESCE_MS.div_ceil(tick_ms).max(1),
            max_step_cm: MAX_HAND_SPEED_CM_S * tick_ms as f64 / 1000.0,
            segments_closed: 0,
            ghosts_rejected: 0,
            tremor_ticks: 0,
            cfg,
        }
    }

    /// The classifier's current state.
    #[must_use]
    pub fn state(&self) -> StreamState {
        self.state
    }

    /// Streams closed on idle gaps since boot/reset.
    #[must_use]
    pub fn segments_closed(&self) -> u64 {
        self.segments_closed
    }

    /// Fold-back candidate streams rejected for inconsistency.
    #[must_use]
    pub fn ghosts_rejected(&self) -> u64 {
        self.ghosts_rejected
    }

    /// Ticks spent holding against classified tremor.
    #[must_use]
    pub fn tremor_ticks(&self) -> u64 {
        self.tremor_ticks
    }

    /// Segmentation stage, part 1: the 3-tap spike median over codes.
    fn despike(&mut self, code: f64) -> f64 {
        if self.spike_len < 3 {
            self.spike[self.spike_len] = code;
            self.spike_len += 1;
            return code;
        }
        self.spike.rotate_left(1);
        self.spike[2] = code;
        let [a, b, c] = self.spike;
        // Median of three without sorting the buffer itself.
        a.max(b).min(a.min(b).max(c))
    }

    /// Codes → centimetres through the calibrated curve, with the same
    /// acceptance band the firmware applies to its distance estimate.
    fn to_cm(&self, code: f64) -> Option<f64> {
        let volts = code / 1023.0 * 5.0;
        self.cfg.curve.distance_at(volts).filter(|d| {
            (self.cfg.near_cm - NEAR_MARGIN_CM..=self.cfg.far_cm + FAR_MARGIN_CM).contains(d)
        })
    }

    /// Refreshes the emitted output from the tracker. Deliberate motion
    /// refreshes every tick; everything else coalesces at the redraw
    /// cadence.
    fn refresh_out(&mut self, tick: u64) {
        if let Some(t) = self.track_code {
            let due = self.state == StreamState::Deliberate
                || tick.saturating_sub(self.last_out_tick) >= self.coalesce_ticks;
            if due {
                self.out_code = t;
                self.last_out_tick = tick;
            }
        }
    }

    /// Moves the fractional accumulator toward an admitted code.
    fn track_toward(&mut self, code: f64, alpha: f64) {
        self.track_code = Some(match self.track_code {
            Some(t) => t + alpha * (code - t),
            None => code,
        });
    }

    /// An out-of-band or flat tick; closes the segment after the idle
    /// horizon.
    fn idle_tick(&mut self) {
        self.idle_run += 1;
        if self.idle_run == self.idle_gap_ticks && self.state != StreamState::Idle {
            self.segments_closed += 1;
            self.window.clear();
            self.state = StreamState::Idle;
        }
    }
}

impl Recognizer for Segmented {
    fn name(&self) -> &'static str {
        "segmented"
    }

    fn process(&mut self, raw: u16, tick: u64) -> u16 {
        // --- Stage 1: segmentation -----------------------------------
        let code = self.despike(f64::from(raw));
        let d_opt = self.to_cm(code);

        let Some(d) = d_opt else {
            // Out of the usable band: no stream sample. Hold the output;
            // the mapping layer renders out-of-band codes as
            // TooNear/TooFar holds anyway, so holding here matches the
            // classic chain's end-to-end behaviour.
            self.idle_tick();
            self.prev_d = None;
            self.refresh_out(tick);
            return emitted(self.track_code, self.out_code, raw);
        };

        // Fold-back discontinuity: a displacement no hand produces in
        // one tick. Admission predicate of the FoldBack state.
        if self.state != StreamState::FoldBack {
            if let Some(p) = self.prev_d {
                if (d - p).abs() > self.max_step_cm {
                    self.state = StreamState::FoldBack;
                    self.fold_origin_cm = p;
                    self.fold_candidate_cm = None;
                    self.fold_run = 0;
                    self.window.clear();
                }
            }
        }

        // --- Stage 2: classification ---------------------------------
        if self.state == StreamState::FoldBack {
            // Exit 1: the hand returned to where it was.
            if (d - self.fold_origin_cm).abs() <= FOLD_RETURN_CM {
                self.state = StreamState::Examining;
                self.window.clear();
                self.window.push(d);
                self.prev_d = Some(d);
                self.prev_code = code;
                self.track_toward(code, TRACK_ALPHA_EXAMINING);
                self.refresh_out(tick);
                return emitted(self.track_code, self.out_code, raw);
            }
            // Exit 2: a self-consistent candidate stream persisted long
            // enough to be a genuine new position.
            match self.fold_candidate_cm {
                Some(c) if (d - c).abs() <= FOLD_CONSISTENT_CM => {
                    self.fold_candidate_cm = Some(c + 0.4 * (d - c));
                    self.fold_candidate_code += 0.4 * (code - self.fold_candidate_code);
                    self.fold_run += 1;
                    if self.fold_run >= self.fold_resume_ticks {
                        self.track_code = Some(self.fold_candidate_code);
                        self.state = StreamState::Examining;
                        self.window.clear();
                        self.window.push(d);
                        self.prev_d = Some(d);
                        self.prev_code = code;
                        self.last_out_tick = 0; // emit promptly
                    }
                }
                Some(_) => {
                    // The ghost flickered to another alias distance:
                    // reject the candidate and start over.
                    self.ghosts_rejected += 1;
                    self.fold_candidate_cm = Some(d);
                    self.fold_candidate_code = code;
                    self.fold_run = 1;
                }
                None => {
                    self.fold_candidate_cm = Some(d);
                    self.fold_candidate_code = code;
                    self.fold_run = 1;
                }
            }
            self.refresh_out(tick);
            return emitted(self.track_code, self.out_code, raw);
        }

        self.window.push(d);
        self.prev_d = Some(d);
        self.prev_code = code;
        let range = self.window.range();
        let net = self.window.net();
        let flips = self.window.sign_flips();

        // Idle-gap bookkeeping: a flat window (or out-of-band, handled
        // above) eventually closes the stream.
        let near_out = self
            .track_code
            .is_some_and(|t| self.to_cm(t).is_some_and(|tc| (d - tc).abs() < WAKE_CM));
        if range < IDLE_RANGE_CM && near_out {
            self.idle_tick();
        } else {
            self.idle_run = 0;
        }

        let first_contact = self.track_code.is_none();
        match self.state {
            StreamState::Idle => {
                // Admission into Examining: displacement from the
                // emitted position beyond the wake threshold, or the
                // very first in-band contact.
                if first_contact || !near_out {
                    self.state = StreamState::Examining;
                }
                self.track_toward(code, TRACK_ALPHA_SETTLED);
            }
            StreamState::Examining => {
                if net.abs() >= DELIBERATE_NET_CM && flips < TREMOR_SIGN_FLIPS {
                    // Admission into Deliberate: sustained net motion in
                    // a consistent direction — large-amplitude tremor
                    // can momentarily show the same net displacement,
                    // but never without direction reversals.
                    self.state = StreamState::Deliberate;
                } else if flips >= TREMOR_SIGN_FLIPS && range <= TREMOR_RANGE_CM {
                    // Admission into Tremor: oscillation without net
                    // drift.
                    self.state = StreamState::Tremor;
                    self.tremor_anchor_cm = self.window.mean();
                } else if range < IDLE_RANGE_CM && near_out {
                    self.state = StreamState::Idle;
                }
                self.track_toward(code, TRACK_ALPHA_EXAMINING);
            }
            StreamState::Deliberate => {
                if flips >= TREMOR_SIGN_FLIPS && range <= TREMOR_RANGE_CM {
                    // Exit: what looked like a reach keeps reversing —
                    // the first half-swing of a tremor cycle is
                    // indistinguishable from a small submovement, so
                    // this exit is what makes the misclassification
                    // self-correct within a cycle.
                    self.state = StreamState::Tremor;
                    self.tremor_anchor_cm = self.window.mean();
                    self.track_toward(code, TRACK_ALPHA_SETTLED);
                } else if range < IDLE_RANGE_CM {
                    // Exit: the submovement landed.
                    self.state = StreamState::Examining;
                    self.track_toward(code, TRACK_ALPHA_EXAMINING);
                } else {
                    self.track_toward(code, TRACK_ALPHA_DELIBERATE);
                }
            }
            StreamState::Tremor => {
                self.tremor_ticks += 1;
                let drift = (self.window.mean() - self.tremor_anchor_cm).abs();
                if drift > TREMOR_ESCAPE_CM || range > TREMOR_RANGE_CM {
                    // Exit: the oscillation is riding on real movement.
                    self.state = StreamState::Examining;
                    self.track_toward(code, TRACK_ALPHA_EXAMINING);
                } else {
                    // Hold: average the oscillation away slowly.
                    self.track_toward(code, TRACK_ALPHA_SETTLED);
                }
            }
            // FoldBack returned early above; Idle/Examining transitions
            // from it re-enter here next tick.
            StreamState::FoldBack => {}
        }

        // --- Stage 3: rate-normalized emission -----------------------
        self.refresh_out(tick);
        emitted(self.track_code, self.out_code, raw)
    }

    fn reset(&mut self) {
        let cfg = self.cfg;
        let (segments, ghosts, tremor) = (
            self.segments_closed,
            self.ghosts_rejected,
            self.tremor_ticks,
        );
        *self = Segmented::new(cfg);
        // Diagnostics survive a level rebuild: they describe the whole
        // session, and R1 reads them after multi-level runs.
        self.segments_closed = segments;
        self.ghosts_rejected = ghosts;
        self.tremor_ticks = tremor;
    }

    fn stage_costs(&self) -> &'static [StageCost] {
        SEGMENTED_STAGES
    }

    fn ram_bytes(&self) -> usize {
        SEGMENTED_STAGES.iter().map(|s| s.ram_bytes).sum()
    }
}

/// The output rule: before the first in-band contact the raw code
/// passes through (so out-of-band boot states still classify as
/// TooNear/TooFar downstream, exactly like the classic chain); after
/// that, the coalesced accumulator is authoritative.
fn emitted(track: Option<f64>, out_code: f64, raw: u16) -> u16 {
    if track.is_some() {
        out_code.round().clamp(0.0, 1023.0) as u16
    } else {
        // Pass-through stays a valid 10-bit code even if the caller
        // hands in garbage beyond the converter's range.
        raw.min(1023)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distscroll_sensors::calibrate::fit_inverse_curve;
    use distscroll_sensors::gp2d120::ideal_voltage;

    fn curve() -> InverseCurveFit {
        let pts: Vec<(f64, f64)> = (4..=30)
            .map(|d| (f64::from(d), ideal_voltage(f64::from(d))))
            .collect();
        fit_inverse_curve(&pts).expect("ideal curve fits")
    }

    fn seg() -> Segmented {
        Segmented::new(SegmentedConfig {
            curve: curve(),
            near_cm: 4.0,
            far_cm: 30.0,
            tick_ms: 10,
        })
    }

    fn code_at(d: f64) -> u16 {
        (ideal_voltage(d) / 5.0 * 1023.0).round() as u16
    }

    #[test]
    fn deliberate_sweep_is_tracked() {
        let mut s = seg();
        let mut tick = 0;
        for _ in 0..40 {
            s.process(code_at(20.0), tick);
            tick += 1;
        }
        // Sweep 20 cm -> 10 cm at 0.5 cm per tick (50 cm/s: deliberate).
        let mut d = 20.0;
        while d > 10.0 {
            d -= 0.5;
            s.process(code_at(d), tick);
            tick += 1;
        }
        assert_eq!(s.state(), StreamState::Deliberate);
        // Let it settle and coalesce.
        for _ in 0..60 {
            s.process(code_at(10.0), tick);
            tick += 1;
        }
        let out = s.process(code_at(10.0), tick);
        let got = curve().distance_at(f64::from(out) / 1023.0 * 5.0).unwrap();
        assert!(
            (got - 10.0).abs() < 0.8,
            "output should land near 10 cm, got {got:.2}"
        );
    }

    #[test]
    fn tremor_oscillation_holds_the_output() {
        let mut s = seg();
        let mut tick = 0;
        for _ in 0..60 {
            s.process(code_at(15.0), tick);
            tick += 1;
        }
        let settled = s.process(code_at(15.0), tick);
        tick += 1;
        // 9 Hz tremor, 0.3 cm amplitude, sampled at 100 Hz.
        let mut outs = Vec::new();
        for k in 0..200u64 {
            let t = k as f64 * 0.01;
            let d = 15.0 + 0.3 * (2.0 * std::f64::consts::PI * 9.0 * t).sin();
            outs.push(s.process(code_at(d), tick));
            tick += 1;
        }
        assert!(s.tremor_ticks() > 0, "tremor must be classified");
        let max_dev = outs
            .iter()
            .map(|&o| i32::from(o).abs_diff(i32::from(settled)))
            .max()
            .unwrap();
        assert!(
            max_dev <= 6,
            "held output should barely move under tremor: {max_dev} codes"
        );
    }

    #[test]
    fn foldback_ghost_is_rejected_and_return_resumes() {
        let mut s = seg();
        let mut tick = 0;
        for _ in 0..60 {
            s.process(code_at(6.0), tick);
            tick += 1;
        }
        let held = s.process(code_at(6.0), tick);
        tick += 1;
        // An incursion below 4 cm aliases to a far distance
        // instantaneously — an impossible jump.
        for _ in 0..6 {
            s.process(code_at(14.0), tick);
            tick += 1;
        }
        assert_eq!(s.state(), StreamState::FoldBack);
        let during = s.process(code_at(14.0), tick);
        tick += 1;
        assert_eq!(during, held, "output must hold through the ghost");
        // The hand comes back out of the fold region.
        for _ in 0..30 {
            s.process(code_at(6.1), tick);
            tick += 1;
        }
        assert_ne!(s.state(), StreamState::FoldBack, "return must resume");
    }

    #[test]
    fn genuine_fast_reach_eventually_lands() {
        let mut s = seg();
        let mut tick = 0;
        for _ in 0..60 {
            s.process(code_at(25.0), tick);
            tick += 1;
        }
        // A teleport-fast move (sensor re-lock) to 8 cm that then stays:
        // the consistent candidate stream must be admitted.
        for _ in 0..120 {
            s.process(code_at(8.0), tick);
            tick += 1;
        }
        let out = s.process(code_at(8.0), tick);
        let got = curve().distance_at(f64::from(out) / 1023.0 * 5.0).unwrap();
        assert!(
            (got - 8.0).abs() < 1.0,
            "consistent new stream must win: got {got:.2} cm"
        );
    }

    #[test]
    fn out_of_band_boot_passes_raw_through() {
        let mut s = seg();
        // 45 cm is beyond the acceptance band: raw passes through so the
        // mapping still sees TooFar codes.
        let raw = code_at(30.0) / 3; // a very low code, far out of band
        assert_eq!(s.process(raw, 0), raw);
    }

    #[test]
    fn replay_is_deterministic() {
        let stream: Vec<u16> = (0..400)
            .map(|k| code_at(12.0 + 6.0 * ((k as f64) * 0.05).sin()))
            .collect();
        let mut a = seg();
        let mut b = seg();
        for (t, &c) in stream.iter().enumerate() {
            assert_eq!(a.process(c, t as u64), b.process(c, t as u64));
            assert_eq!(a.state(), b.state());
        }
    }
}
