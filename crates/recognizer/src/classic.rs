//! The paper's filter chain as a [`Recognizer`]: slew gate → median →
//! EMA, extracted from the firmware loop without changing a single
//! floating-point operation.

use distscroll_sensors::filter::{Ema, MedianFilter, SlewGate};

use crate::{Recognizer, StageCost};

/// Ticks a rejected outlier must persist before the slew gate yields to
/// it. The gate must hold longer than one sensor sample-and-hold period
/// (~4 ticks), or a held outlier wins by persistence.
pub const SLEW_GIVE_UP_TICKS: u8 = 8;

/// The classic chain's per-stage cost table. The cycle figures are the
/// split of the PIC18 measurement the firmware used to carry as part of
/// one opaque per-tick constant: comparing-and-holding in the gate,
/// the insertion sort behind a 9-tap median, and one fixed-point
/// multiply-accumulate for the EMA.
pub const CLASSIC_STAGES: &[StageCost] = &[
    StageCost {
        name: "slew gate",
        cycles: 8,
        ram_bytes: 6,
    },
    StageCost {
        name: "median",
        cycles: 48,
        // The window buffer scales with the configured length and is
        // accounted dynamically in `ram_bytes()`.
        ram_bytes: 0,
    },
    StageCost {
        name: "ema",
        cycles: 6,
        ram_bytes: 6,
    },
];

/// Configuration for [`ClassicChain`] — the firmware's filter settings
/// with the slew-gate activation already resolved (the profile gates it
/// on `filters.slew_gate && !expert_foldback`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassicConfig {
    /// Median window length (odd, 1 disables).
    pub median_len: usize,
    /// EMA smoothing factor in `(0, 1]`.
    pub ema_alpha: f64,
    /// Maximum plausible change per tick, in ADC codes, for the gate.
    pub slew_max_codes: f64,
    /// Whether the gate actually runs (resolved from the profile).
    pub slew_enabled: bool,
}

impl ClassicConfig {
    /// The shipping chain: 9-tap median, light EMA, gate on.
    #[must_use]
    pub fn paper() -> Self {
        ClassicConfig {
            median_len: 9,
            ema_alpha: 0.45,
            slew_max_codes: 120.0,
            slew_enabled: true,
        }
    }
}

/// The legacy chain behind the [`Recognizer`] trait.
///
/// Fed the same raw codes, `process` performs the exact same `f64`
/// operations in the same order as the pre-refactor inline firmware
/// code — `crates/recognizer/tests/classic_chain_equivalence.rs` pins
/// that down tick for tick against a verbatim replica.
#[derive(Debug, Clone)]
pub struct ClassicChain {
    median: MedianFilter,
    ema: Ema,
    slew: SlewGate,
    slew_enabled: bool,
}

impl ClassicChain {
    /// Builds the chain.
    ///
    /// # Panics
    ///
    /// Panics if `median_len` is even or exceeds the filter's cap — the
    /// device profile validates these bounds before construction.
    #[must_use]
    pub fn new(cfg: &ClassicConfig) -> Self {
        ClassicChain {
            median: MedianFilter::new(cfg.median_len),
            ema: Ema::new(cfg.ema_alpha),
            slew: SlewGate::new(cfg.slew_max_codes, SLEW_GIVE_UP_TICKS),
            slew_enabled: cfg.slew_enabled,
        }
    }
}

impl Recognizer for ClassicChain {
    fn name(&self) -> &'static str {
        "classic-chain"
    }

    fn process(&mut self, raw: u16, _tick: u64) -> u16 {
        let mut x = f64::from(raw);
        if self.slew_enabled {
            x = self.slew.push(x);
        }
        x = self.median.push(x);
        x = self.ema.push(x);
        x.round().clamp(0.0, 1023.0) as u16
    }

    fn reset(&mut self) {
        self.median.reset();
        self.ema.reset();
        self.slew.reset();
    }

    fn stage_costs(&self) -> &'static [StageCost] {
        CLASSIC_STAGES
    }

    fn ram_bytes(&self) -> usize {
        self.median.ram_bytes() + CLASSIC_STAGES.iter().map(|s| s.ram_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chain_budget_and_ram_match_the_firmware_constants() {
        let c = ClassicChain::new(&ClassicConfig::paper());
        // 8 + 48 + 6: the split of the old opaque TICK_CYCLES figure.
        assert_eq!(c.cycle_budget(), 62);
        // 9-tap window (18 bytes) + the fixed stage state the firmware
        // used to lump into its `+ 16` literal (the remaining 4 bytes of
        // that literal are the button debouncers, still firmware-owned).
        assert_eq!(c.ram_bytes(), 18 + 12);
    }

    #[test]
    fn disabled_gate_passes_jumps_through() {
        let mut gated = ClassicChain::new(&ClassicConfig::paper());
        let mut open = ClassicChain::new(&ClassicConfig {
            slew_enabled: false,
            ..ClassicConfig::paper()
        });
        for t in 0..20 {
            gated.process(500, t);
            open.process(500, t);
        }
        // A fold-back-style jump held for a few ticks: the gate rejects
        // it, the open chain's median starts passing it through.
        let (mut g, mut o) = (0, 0);
        for t in 20..26 {
            g = gated.process(900, t);
            o = open.process(900, t);
        }
        assert!(o > g, "open chain must react faster: gated {g}, open {o}");
    }

    #[test]
    fn reset_clears_history() {
        let mut c = ClassicChain::new(&ClassicConfig::paper());
        for t in 0..50 {
            c.process(800, t);
        }
        c.reset();
        let mut fresh = ClassicChain::new(&ClassicConfig::paper());
        for t in 0..10 {
            assert_eq!(c.process(300, 50 + t), fresh.process(300, t));
        }
    }
}
