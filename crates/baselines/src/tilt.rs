//! Tilt-based rate control à la Bartlett's Rock'n'Scroll.
//!
//! The related work (Section 2) discusses tilt interfaces (Rock'n'Scroll,
//! TiltText, Unigesture): tipping the device sets a scroll *rate*. The
//! model reads the tilt through the ADXL311 accelerometer model — the
//! part that sits unused on the DistScroll board (Section 4.3) — so the
//! baseline sees realistic sensor noise. The user runs proportional
//! rate control with a neuromuscular lag on the wrist and discrete
//! visual sampling; overshoot falls out of the delays, and the paper's
//! fatigue argument ("using this input method for a longer period of
//! time is fatiguing") shows up as the integrated wrist-deflection cost
//! this module also reports.

use distscroll_sensors::adxl311::{Adxl311, Orientation};
use distscroll_user::perception::VisualSampler;
use distscroll_user::population::UserParams;
use rand::rngs::StdRng;

use crate::technique::{ScrollTechnique, TrialResult, TrialSetup, TRIAL_TIMEOUT_S};

/// Maximum comfortable wrist tilt, degrees.
const MAX_TILT_DEG: f64 = 30.0;
/// Scroll gain: entries per second at full tilt.
const MAX_RATE: f64 = 14.0;
/// Neuromuscular first-order lag of the wrist, seconds.
const WRIST_LAG_S: f64 = 0.12;
/// Tilt dead band, degrees (below this nothing scrolls).
const DEAD_BAND_DEG: f64 = 3.0;

/// The tilt rate-control technique.
#[derive(Debug, Clone)]
pub struct TiltTechnique {
    accel: Adxl311,
    last_wrist_integral: f64,
}

impl TiltTechnique {
    /// Tilt control read through a typical ADXL311.
    pub fn new() -> Self {
        TiltTechnique {
            accel: Adxl311::typical(),
            last_wrist_integral: 0.0,
        }
    }

    /// Integrated |wrist deflection|·dt of the last trial, degree-seconds
    /// — the fatigue proxy.
    pub fn last_wrist_effort(&self) -> f64 {
        self.last_wrist_integral
    }
}

impl Default for TiltTechnique {
    fn default() -> Self {
        TiltTechnique::new()
    }
}

impl ScrollTechnique for TiltTechnique {
    fn name(&self) -> &'static str {
        "tilt"
    }

    fn run_trial(
        &mut self,
        user: &UserParams,
        setup: &TrialSetup,
        rng: &mut StdRng,
    ) -> TrialResult {
        let practice = user.practice_factor(setup.trial_number);
        let dt = 0.01;
        let mut t = 0.0;
        let react_until = user.perception.reaction_time_s(rng) * practice;
        let mut cursor_f = setup.start_idx as f64;
        let target = setup.target_idx as f64;
        let n = setup.n_entries as f64;
        let mut sampler = VisualSampler::new(user.perception.visual_sampling_s);
        let mut tilt_cmd_deg = 0.0;
        let mut tilt_deg = 0.0;
        let mut wrist_integral = 0.0;
        let mut reversals = 0u32;
        let mut last_sign = 0.0;
        let mut settle_since: Option<f64> = None;

        while t < TRIAL_TIMEOUT_S {
            let displayed = cursor_f.round().clamp(0.0, n - 1.0) as usize;
            let seen = sampler.observe(t, displayed).unwrap_or(setup.start_idx) as f64;

            if t >= react_until {
                // Proportional control on the *seen* error, re-planned at
                // each visual sample. The human gain is high: combined
                // with the visual staleness and the wrist lag it sits near
                // the stability margin, which is exactly what produces the
                // overshoot rate control is known for.
                let err = target - seen;
                let desired_rate = (err * 5.0).clamp(-MAX_RATE, MAX_RATE);
                tilt_cmd_deg = desired_rate / MAX_RATE * MAX_TILT_DEG;
                if tilt_cmd_deg.signum() != last_sign && last_sign != 0.0 && tilt_cmd_deg != 0.0 {
                    reversals += 1;
                }
                if tilt_cmd_deg != 0.0 {
                    last_sign = tilt_cmd_deg.signum();
                }
            }

            // Wrist follows the command with a first-order lag plus motor
            // noise proportional to the deflection.
            tilt_deg += (tilt_cmd_deg - tilt_deg) * (dt / WRIST_LAG_S).min(1.0);
            let motor_noise = crate::technique::gaussian(rng) * 0.5;
            let true_tilt = tilt_deg + motor_noise;
            wrist_integral += true_tilt.abs() * dt;

            // The firmware reads the tilt through the accelerometer.
            let o = Orientation::from_degrees(true_tilt, 0.0);
            let v = self.accel.y_volts(&o, 0.0, rng);
            let meas_deg = Adxl311::volts_to_angle_rad(v).to_degrees();
            let rate = if meas_deg.abs() < DEAD_BAND_DEG {
                0.0
            } else {
                meas_deg / MAX_TILT_DEG * MAX_RATE
            };
            cursor_f = (cursor_f + rate * dt).clamp(0.0, n - 1.0);

            // Settled on target with near-level wrist → confirm.
            if displayed == setup.target_idx && tilt_cmd_deg.abs() < DEAD_BAND_DEG {
                let since = *settle_since.get_or_insert(t);
                if t - since >= user.dwell_s * practice.sqrt() {
                    t += user.keystroke_s * practice;
                    let selected = cursor_f.round().clamp(0.0, n - 1.0) as usize;
                    self.last_wrist_integral = wrist_integral;
                    return TrialResult {
                        time_s: t,
                        selected_idx: Some(selected),
                        correct: selected == setup.target_idx,
                        corrections: reversals,
                    };
                }
            } else {
                settle_since = None;
            }
            t += dt;
        }
        self.last_wrist_integral = wrist_integral;
        TrialResult::timeout(t, reversals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(setup: TrialSetup, seed: u64) -> TrialResult {
        let mut tech = TiltTechnique::new();
        let mut rng = StdRng::seed_from_u64(seed);
        tech.run_trial(&UserParams::expert(), &setup, &mut rng)
    }

    #[test]
    fn rate_control_reaches_targets() {
        let correct = (0..30)
            .filter(|&s| run(TrialSetup::new(32, 0, 20, 50), s).correct)
            .count();
        assert!(correct >= 24, "tilt should usually work: {correct}/30");
    }

    #[test]
    fn overshoot_causes_reversals_on_long_jumps() {
        let total: u32 = (0..20)
            .map(|s| run(TrialSetup::new(64, 0, 50, 50), s).corrections)
            .sum();
        assert!(total > 0, "rate control with lag must sometimes reverse");
    }

    #[test]
    fn fatigue_proxy_accumulates() {
        let mut tech = TiltTechnique::new();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = tech.run_trial(
            &UserParams::expert(),
            &TrialSetup::new(32, 0, 28, 50),
            &mut rng,
        );
        assert!(
            tech.last_wrist_effort() > 1.0,
            "long scrolls cost wrist effort"
        );
    }

    #[test]
    fn times_scale_with_distance() {
        let avg = |target: usize| {
            (0..10)
                .map(|s| run(TrialSetup::new(64, 0, target, 50), s).time_s)
                .sum::<f64>()
                / 10.0
        };
        assert!(avg(50) > avg(5));
    }
}
