//! The TUISTER: a two-handed tangible rotation interface.
//!
//! "The TUISTER provides an interface where the user can turn part of a
//! device thus exploring one level of a menu structure. Turning the
//! second part with the other hand, an entry can be selected … For many
//! application areas one limitation is that both hands have to be used"
//! (paper, Section 2).
//!
//! The model: the dominant hand twists the upper half in wrist-sized
//! turns (a comfortable twist covers ~4 entries, then the hand must
//! regrip), the other hand confirms with a counter-twist. Selection is
//! accurate (detents), but every trial *requires the second hand* — the
//! property DistScroll was designed to avoid, surfaced through
//! [`ScrollTechnique::hands_required`].

use distscroll_user::perception::VisualSampler;
use distscroll_user::population::UserParams;
use rand::rngs::StdRng;
use rand::Rng;

use crate::technique::{ScrollTechnique, TrialResult, TrialSetup, TRIAL_TIMEOUT_S};

/// Entries per comfortable wrist twist before regripping.
const TWIST_SPAN: i64 = 4;
/// Time for one twist gesture, seconds.
const TWIST_S: f64 = 0.28;
/// Regrip pause, seconds.
const REGRIP_S: f64 = 0.12;
/// The confirming counter-twist with the other hand, seconds.
const CONFIRM_TWIST_S: f64 = 0.35;

/// The two-handed TUISTER baseline.
#[derive(Debug, Clone, Default)]
pub struct TuisterTechnique {
    _priv: (),
}

impl TuisterTechnique {
    /// A TUISTER with one detent per entry.
    pub fn new() -> Self {
        TuisterTechnique::default()
    }
}

impl ScrollTechnique for TuisterTechnique {
    fn name(&self) -> &'static str {
        "tuister"
    }

    fn hands_required(&self) -> u8 {
        2
    }

    fn run_trial(
        &mut self,
        user: &UserParams,
        setup: &TrialSetup,
        rng: &mut StdRng,
    ) -> TrialResult {
        let practice = user.practice_factor(setup.trial_number);
        // Two-handed acquisition: both hands must be on the device before
        // anything happens.
        let mut t = user.perception.reaction_time_s(rng) * practice + 0.35 * practice;
        let mut cursor = setup.start_idx as i64;
        let target = setup.target_idx as i64;
        let n = setup.n_entries as i64;
        let mut sampler = VisualSampler::new(user.perception.visual_sampling_s);
        let mut corrections = 0u32;

        while t < TRIAL_TIMEOUT_S {
            let seen = sampler
                .observe(t, cursor.max(0) as usize)
                .unwrap_or(setup.start_idx) as i64;
            let remaining = target - seen;
            if remaining == 0 && cursor == target {
                break;
            }
            if remaining == 0 {
                t += user.perception.visual_sampling_s;
                continue;
            }
            let planned = remaining.clamp(-TWIST_SPAN, TWIST_SPAN);
            // Large twists occasionally land one detent short (skin
            // slip on the barrel).
            let executed = if planned.abs() >= 3 && rng.gen_bool(0.15) {
                planned - planned.signum()
            } else {
                planned
            };
            if executed != planned {
                corrections += 1;
            }
            cursor = (cursor + executed).clamp(0, n - 1);
            t += (TWIST_S + REGRIP_S) * practice;
        }

        // Verify, then confirm with the *other* hand's counter-twist.
        t += user.dwell_s * practice.sqrt();
        if cursor != target {
            cursor = target;
            corrections += 1;
            t += (TWIST_S + REGRIP_S) * practice;
        }
        t += CONFIRM_TWIST_S * practice;
        let selected = cursor.max(0) as usize;
        TrialResult {
            time_s: t,
            selected_idx: Some(selected),
            correct: selected == setup.target_idx,
            corrections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(setup: TrialSetup, seed: u64) -> TrialResult {
        let mut tech = TuisterTechnique::new();
        let mut rng = StdRng::seed_from_u64(seed);
        tech.run_trial(&UserParams::expert(), &setup, &mut rng)
    }

    #[test]
    fn it_needs_both_hands() {
        assert_eq!(TuisterTechnique::new().hands_required(), 2);
    }

    #[test]
    fn trials_complete_correctly() {
        let correct = (0..30)
            .filter(|&s| run(TrialSetup::new(16, 2, 13, 50), s).correct)
            .count();
        assert!(correct >= 27, "detented rotation is accurate: {correct}/30");
    }

    #[test]
    fn twisting_batches_entries() {
        let avg = |target: usize| {
            (0..10)
                .map(|s| run(TrialSetup::new(32, 0, target, 50), s).time_s)
                .sum::<f64>()
                / 10.0
        };
        let t4 = avg(4);
        let t16 = avg(16);
        assert!(t16 > t4, "more twists cost more");
        assert!(
            t16 < 4.0 * t4,
            "twists batch ~4 entries: {t4:.2}s vs {t16:.2}s"
        );
    }

    #[test]
    fn two_handed_acquisition_costs_up_front() {
        // Even a zero-distance selection pays the bimanual setup.
        let r = run(TrialSetup::new(8, 3, 4, 50), 1);
        assert!(r.time_s > 0.9, "{}", r.time_s);
    }
}
