//! Rantanen et al.'s YoYo interface: a garment-mounted pull-string wheel.
//!
//! "They suggested a YoYo-like device attached to the garment. It can be
//! pulled with one hand and retracts automatically using a spring. By
//! pulling, a wheel is turned and this is translated as an input
//! parameter" (paper, Section 2). The YoYo is DistScroll's closest
//! relative: positional control over an arm-length range — but measured
//! *mechanically*. That buys it a noise-free encoder (detents, no IR
//! noise), and costs it the mechanics the DistScroll authors argue
//! against: the spring load on the arm, cable backlash, and attachment
//! to the clothing.
//!
//! The model reuses the positional-aim user controller against a
//! mechanical transfer: linear pull-length → detent quantization with a
//! little backlash, plus a spring-tension slowdown factor on reaches.

use distscroll_user::population::UserParams;
use distscroll_user::strategy::{DeviceGeometry, PositionAim, UserCommand};
use rand::rngs::StdRng;

use crate::technique::{gaussian, ScrollTechnique, TrialResult, TrialSetup, TRIAL_TIMEOUT_S};

/// Pull range of the string, cm (about the same reach envelope as
/// DistScroll's 4–30 cm).
const PULL_MIN_CM: f64 = 2.0;
/// Maximum comfortable pull, cm.
const PULL_MAX_CM: f64 = 28.0;
/// Cable backlash: the wheel ignores direction reversals smaller than
/// this, cm.
const BACKLASH_CM: f64 = 0.25;
/// Working against the retraction spring slows reaches by this factor.
const SPRING_SLOWDOWN: f64 = 1.12;

/// The YoYo pull-string technique.
#[derive(Debug, Clone, Default)]
pub struct YoyoTechnique {
    _priv: (),
}

impl YoyoTechnique {
    /// A YoYo with an arm-length pull range.
    pub fn new() -> Self {
        YoyoTechnique::default()
    }

    /// The mechanical transfer: pull length → displayed entry. Detents
    /// are equally spaced along the pull; backlash adds a direction-
    /// dependent offset.
    fn display(pull_cm: f64, backlash_offset: f64, n: usize) -> usize {
        let span = PULL_MAX_CM - PULL_MIN_CM;
        let u = ((pull_cm + backlash_offset - PULL_MIN_CM) / span).clamp(0.0, 0.999_999);
        (u * n as f64) as usize
    }
}

impl ScrollTechnique for YoyoTechnique {
    fn name(&self) -> &'static str {
        "yoyo"
    }

    fn run_trial(
        &mut self,
        user: &UserParams,
        setup: &TrialSetup,
        rng: &mut StdRng,
    ) -> TrialResult {
        // The spring load scales the user's movement times slightly.
        let mut slowed = *user;
        slowed.fitts.a_s *= SPRING_SLOWDOWN;
        slowed.fitts.b_s_per_bit *= SPRING_SLOWDOWN;

        let geometry = DeviceGeometry {
            near_cm: PULL_MIN_CM,
            far_cm: PULL_MAX_CM,
            n_entries: setup.n_entries,
            toward_is_down: false, // pulling out = down the list
        };
        let start_cm = geometry.entry_position_cm(setup.start_idx);
        let mut aim = PositionAim::new(
            slowed,
            geometry,
            setup.target_idx,
            start_cm,
            setup.trial_number,
            rng,
        );

        let dt = 0.01;
        let mut t = 0.0;
        let mut pull = start_cm;
        let mut last_pull = start_cm;
        let mut backlash_offset = 0.0;
        let mut displayed = YoyoTechnique::display(pull, 0.0, setup.n_entries);
        let mut selected: Option<usize> = None;
        let mut pressed_at: Option<f64> = None;

        while t < TRIAL_TIMEOUT_S {
            let (pos, cmd) = aim.step(t, displayed, rng);
            // Backlash: the wheel lags reversals by up to BACKLASH_CM.
            let delta = pos - last_pull;
            if delta.abs() > 1e-9 {
                backlash_offset =
                    (backlash_offset - delta).clamp(-BACKLASH_CM / 2.0, BACKLASH_CM / 2.0);
            }
            last_pull = pull;
            pull = pos.clamp(PULL_MIN_CM - 1.0, PULL_MAX_CM + 1.0);
            // Detent jitter: ±0.05 cm of cable stretch noise.
            let jitter = gaussian(rng) * 0.05;
            displayed = YoyoTechnique::display(pull + jitter, backlash_offset, setup.n_entries);
            match cmd {
                UserCommand::PressSelect => pressed_at = Some(t),
                UserCommand::ReleaseSelect => {
                    if pressed_at.is_some() {
                        selected = Some(displayed);
                    }
                }
                UserCommand::None => {}
            }
            if selected.is_some() && aim.is_done() {
                break;
            }
            t += dt;
        }

        match selected {
            Some(idx) => TrialResult {
                time_s: t,
                selected_idx: Some(idx),
                correct: idx == setup.target_idx,
                corrections: aim.corrections(),
            },
            None => TrialResult::timeout(t, aim.corrections()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(setup: TrialSetup, seed: u64) -> TrialResult {
        let mut tech = YoyoTechnique::new();
        let mut rng = StdRng::seed_from_u64(seed);
        tech.run_trial(&UserParams::expert(), &setup, &mut rng)
    }

    #[test]
    fn display_maps_the_pull_range_evenly() {
        assert_eq!(YoyoTechnique::display(PULL_MIN_CM, 0.0, 10), 0);
        assert_eq!(YoyoTechnique::display(PULL_MAX_CM, 0.0, 10), 9);
        assert_eq!(
            YoyoTechnique::display((PULL_MIN_CM + PULL_MAX_CM) / 2.0, 0.0, 10),
            5
        );
    }

    #[test]
    fn trials_mostly_succeed() {
        let correct = (0..30)
            .filter(|&s| run(TrialSetup::new(12, 1, 9, 50), s).correct)
            .count();
        assert!(correct >= 24, "yoyo positional control works: {correct}/30");
    }

    #[test]
    fn times_scale_with_distance() {
        let avg = |target: usize| {
            (0..12)
                .map(|s| run(TrialSetup::new(16, 0, target, 50), s).time_s)
                .sum::<f64>()
                / 12.0
        };
        assert!(avg(14) > avg(2), "fitts holds for the yoyo too");
    }
}
