//! A ratchet scroll wheel flicked a few detents at a time.
//!
//! The Radial Scroll Tool and the wheel family of the related work
//! (Section 2) scroll by rotational input with tactile detents, one
//! entry per detent. Users move in *flicks*: an open-loop burst of one
//! to four detents, a short regrip, another flick — with the flick
//! magnitude itself slightly noisy (a strong flick can skip a detent or
//! land one short). Near the target users down-shift to careful
//! single-detent flicks.

use distscroll_user::perception::VisualSampler;
use distscroll_user::population::UserParams;
use rand::rngs::StdRng;
use rand::Rng;

use crate::technique::{ScrollTechnique, TrialResult, TrialSetup, TRIAL_TIMEOUT_S};

/// Time for one flick gesture, seconds.
const FLICK_S: f64 = 0.16;
/// Regrip pause between flicks, seconds.
const REGRIP_S: f64 = 0.07;
/// Maximum detents per flick.
const MAX_FLICK: i64 = 4;

/// The ratchet-wheel technique.
#[derive(Debug, Clone, Default)]
pub struct WheelTechnique {
    _priv: (),
}

impl WheelTechnique {
    /// A wheel with one detent per menu entry.
    pub fn new() -> Self {
        WheelTechnique::default()
    }
}

impl ScrollTechnique for WheelTechnique {
    fn name(&self) -> &'static str {
        "wheel"
    }

    fn run_trial(
        &mut self,
        user: &UserParams,
        setup: &TrialSetup,
        rng: &mut StdRng,
    ) -> TrialResult {
        let practice = user.practice_factor(setup.trial_number);
        let mut t = user.perception.reaction_time_s(rng) * practice;
        let mut cursor = setup.start_idx as i64;
        let target = setup.target_idx as i64;
        let n = setup.n_entries as i64;
        let mut sampler = VisualSampler::new(user.perception.visual_sampling_s);
        let mut corrections = 0u32;
        let mut flicks = 0u32;

        // Flick loop: each iteration is one flick decided on the *seen*
        // cursor position.
        while t < TRIAL_TIMEOUT_S {
            let seen = sampler
                .observe(t, cursor.max(0) as usize)
                .unwrap_or(setup.start_idx) as i64;
            let remaining = target - seen;
            if remaining == 0 && cursor == target {
                break;
            }
            if remaining == 0 && cursor != target {
                // Stale view: wait for a fresh sample.
                t += user.perception.visual_sampling_s;
                continue;
            }
            let planned = remaining.clamp(-MAX_FLICK, MAX_FLICK);
            // Big flicks carry ±1 detent of magnitude noise.
            let executed = if planned.abs() >= 3 && rng.gen_bool(0.25) {
                planned + if rng.gen_bool(0.5) { 1 } else { -1 } * planned.signum()
            } else {
                planned
            };
            if executed != planned {
                corrections += 1;
            }
            cursor = (cursor + executed).clamp(0, n - 1);
            flicks += 1;
            t += (FLICK_S + REGRIP_S) * practice;
        }

        // Verify + select press.
        t += user.dwell_s * practice.sqrt();
        let impulsive = rng.gen_bool((user.impulsivity * practice).min(0.9));
        if !impulsive {
            // One more confirming glance; fix a last-moment slip if seen.
            if cursor != target {
                cursor = target;
                corrections += 1;
                t += (FLICK_S + REGRIP_S) * practice;
            }
        }
        t += user.keystroke_s * practice;
        let selected = cursor.max(0) as usize;
        let _ = flicks;
        TrialResult {
            time_s: t,
            selected_idx: Some(selected),
            correct: selected == setup.target_idx,
            corrections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(setup: TrialSetup, seed: u64) -> TrialResult {
        let mut tech = WheelTechnique::new();
        let mut rng = StdRng::seed_from_u64(seed);
        tech.run_trial(&UserParams::expert(), &setup, &mut rng)
    }

    #[test]
    fn trials_complete_correctly() {
        let correct = (0..40)
            .filter(|&s| run(TrialSetup::new(32, 0, 25, 50), s).correct)
            .count();
        assert!(
            correct >= 34,
            "wheel with verification is accurate: {correct}/40"
        );
    }

    #[test]
    fn time_scales_sublinearly_with_distance() {
        let avg = |target: usize| {
            (0..15)
                .map(|s| run(TrialSetup::new(64, 0, target, 50), s).time_s)
                .sum::<f64>()
                / 15.0
        };
        let t8 = avg(8);
        let t32 = avg(32);
        assert!(t32 > t8, "more detents cost more");
        assert!(
            t32 < 4.0 * t8,
            "flicking batches detents: {t8:.2}s vs {t32:.2}s"
        );
    }

    #[test]
    fn single_step_is_one_flick() {
        let r = run(TrialSetup::new(8, 3, 4, 50), 2);
        assert!(r.correct);
        assert!(r.time_s < 2.0, "{}", r.time_s);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            run(TrialSetup::new(16, 0, 9, 1), 5),
            run(TrialSetup::new(16, 0, 9, 1), 5)
        );
    }
}
