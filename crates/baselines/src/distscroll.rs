//! DistScroll as a trial-running technique: the full simulation stack.
//!
//! This is the flagship path of the whole reproduction: the synthetic
//! user's hand moves the simulated device, the GP2D120 model measures
//! the hand, the ADC digitizes it, the firmware filters and island-maps
//! the code, the display shows the highlight, and the user's discretely-
//! sampling eye closes the loop. Nothing here is shortcut: selection
//! times and errors emerge from physics + firmware + motor control.

use distscroll_core::device::DistScrollDevice;
use distscroll_core::events::{Event, TimedEvent};
use distscroll_core::menu::Menu;
use distscroll_core::profile::{DeviceProfile, DirectionMapping, RecognizerKind};
use distscroll_user::population::UserParams;
use distscroll_user::strategy::{DeviceGeometry, PositionAim, UserCommand};
use rand::rngs::StdRng;
use rand::Rng;

use crate::technique::{ScrollTechnique, TrialResult, TrialSetup, TRIAL_TIMEOUT_S};

/// DistScroll, run end to end on the simulated prototype.
#[derive(Debug, Clone)]
pub struct DistScrollTechnique {
    profile: DeviceProfile,
    user_direction_belief: Option<DirectionMapping>,
    environment: Option<(
        distscroll_sensors::environment::Surface,
        distscroll_sensors::environment::AmbientLight,
    )>,
}

impl DistScrollTechnique {
    /// The paper's device profile.
    pub fn paper() -> Self {
        DistScrollTechnique {
            profile: DeviceProfile::paper(),
            user_direction_belief: None,
            environment: None,
        }
    }

    /// DistScroll++: the paper's device with the stream-segmented
    /// recognizer (`distscroll-recognizer`) instead of the classic
    /// filter chain — same hardware, same mapping, different firmware
    /// front end. Enters the shootout as its own lineup entry.
    pub fn segmented() -> Self {
        let mut profile = DeviceProfile::paper();
        profile.recognizer = RecognizerKind::Segmented;
        DistScrollTechnique {
            profile,
            user_direction_belief: None,
            environment: None,
        }
    }

    /// A custom profile (range sweeps, direction flips, ablations).
    pub fn with_profile(profile: DeviceProfile) -> Self {
        DistScrollTechnique {
            profile,
            user_direction_belief: None,
            environment: None,
        }
    }

    /// Runs trials under specific clothing and light conditions instead
    /// of the lab defaults (robustness and filter-ablation experiments).
    pub fn with_environment(
        mut self,
        surface: distscroll_sensors::environment::Surface,
        ambient: distscroll_sensors::environment::AmbientLight,
    ) -> Self {
        self.environment = Some((surface, ambient));
        self
    }

    /// Overrides the *user's belief* about the direction mapping without
    /// changing the device (experiment E3: the cost of a mismatched
    /// direction stereotype). The user initially reaches according to
    /// `belief` and only visual feedback corrects them.
    pub fn with_user_direction_belief(mut self, belief: DirectionMapping) -> Self {
        self.user_direction_belief = Some(belief);
        self
    }

    /// The profile trials run with.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }
}

impl ScrollTechnique for DistScrollTechnique {
    fn name(&self) -> &'static str {
        match self.profile.recognizer {
            RecognizerKind::Classic => "distscroll",
            RecognizerKind::Segmented => "distscroll++",
        }
    }

    fn run_trial(
        &mut self,
        user: &UserParams,
        setup: &TrialSetup,
        rng: &mut StdRng,
    ) -> TrialResult {
        let device_seed: u64 = rng.gen();
        let mut dev = DistScrollDevice::new(
            self.profile.clone(),
            Menu::flat(setup.n_entries),
            device_seed,
        );
        if let Some((surface, ambient)) = self.environment {
            dev.set_surface(surface);
            dev.set_ambient(ambient);
        }

        let believed_direction = self.user_direction_belief.unwrap_or(self.profile.direction);
        let geometry = DeviceGeometry {
            near_cm: self.profile.near_cm,
            far_cm: self.profile.far_cm,
            n_entries: setup.n_entries,
            toward_is_down: believed_direction == DirectionMapping::TowardIsDown,
        };
        // Park the hand on the start entry and let the firmware settle
        // there before the trial clock starts (as study procedures do).
        let start_cm = dev
            .island_center_cm(setup.start_idx)
            .unwrap_or_else(|| geometry.entry_position_cm(setup.start_idx));
        dev.set_distance(start_cm);
        if dev.run_for_ms(500).is_err() {
            return TrialResult::timeout(0.0, 0);
        }
        dev.poll_events(&mut |_: &TimedEvent| {}); // settle events are not the trial's

        let mut aim = PositionAim::new(
            *user,
            geometry,
            setup.target_idx,
            start_cm,
            setup.trial_number,
            rng,
        );

        let t0 = dev.now();
        let tick_s = self.profile.tick_ms as f64 / 1000.0;
        let mut t = 0.0;
        let mut selected: Option<usize> = None;
        while t < TRIAL_TIMEOUT_S {
            let (pos, cmd) = aim.step(t, dev.highlighted(), rng);
            dev.set_distance(pos);
            match cmd {
                UserCommand::PressSelect => dev.press_select(),
                UserCommand::ReleaseSelect => dev.release_select(),
                UserCommand::None => {}
            }
            if dev.tick().is_err() {
                break; // brown-out mid-trial
            }
            dev.poll_events(&mut |ev: &TimedEvent| {
                if let Event::Activated { path } = &ev.event {
                    // Flat menu: the activated label is "Item NN".
                    let idx = path
                        .last()
                        .and_then(|l| l.trim_start_matches("Item ").parse::<usize>().ok());
                    selected = idx;
                }
            });
            if selected.is_some() && aim.is_done() {
                break;
            }
            t = (dev.now() - t0).as_secs_f64();
            // Guard against pathological zero-advance (cannot happen, but
            // the loop must terminate).
            debug_assert!(tick_s > 0.0);
        }

        match selected {
            Some(idx) => TrialResult {
                time_s: t,
                selected_idx: Some(idx),
                correct: idx == setup.target_idx,
                corrections: aim.corrections(),
            },
            None => TrialResult::timeout(t, aim.corrections()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(user: UserParams, setup: TrialSetup, seed: u64) -> TrialResult {
        let mut tech = DistScrollTechnique::paper();
        let mut rng = StdRng::seed_from_u64(seed);
        tech.run_trial(&user, &setup, &mut rng)
    }

    #[test]
    fn expert_trials_mostly_succeed() {
        let mut correct = 0;
        for seed in 0..20 {
            let r = run(UserParams::expert(), TrialSetup::new(8, 1, 6, 50), seed);
            if r.correct {
                correct += 1;
            }
        }
        assert!(
            correct >= 16,
            "experts nearly errorless end to end: {correct}/20"
        );
    }

    #[test]
    fn trial_times_are_human_scale() {
        for seed in 0..5 {
            let r = run(UserParams::expert(), TrialSetup::new(8, 0, 5, 50), seed);
            assert!(
                r.time_s > 0.3,
                "faster than human possibility: {}",
                r.time_s
            );
            assert!(r.time_s < 15.0, "implausibly slow: {}", r.time_s);
        }
    }

    #[test]
    fn longer_distances_cost_more_time() {
        let avg = |target: usize| {
            (0..12)
                .map(|s| run(UserParams::expert(), TrialSetup::new(12, 0, target, 50), s).time_s)
                .sum::<f64>()
                / 12.0
        };
        let near = avg(2);
        let far = avg(11);
        assert!(
            far > near,
            "fitts through the whole stack: {near:.2}s vs {far:.2}s"
        );
    }

    #[test]
    fn results_are_reproducible_by_seed() {
        let a = run(UserParams::typical(), TrialSetup::new(8, 2, 6, 1), 7);
        let b = run(UserParams::typical(), TrialSetup::new(8, 2, 6, 1), 7);
        assert_eq!(a, b);
    }
}
