//! Baseline scrolling techniques for the paper's open comparison.
//!
//! Section 7's first open question is "Is distance-based scrolling
//! faster, equal or slower than other scrolling techniques?" The related
//! work (Section 2) names the candidates; each is implemented here
//! behind the common [`technique::ScrollTechnique`] trait and driven by
//! the same synthetic users:
//!
//! * [`distscroll`] — the full device simulation (board + sensor +
//!   firmware) driven by the positional-aim user controller; the
//!   flagship — in two firmware flavours: the paper's classic filter
//!   chain (`distscroll`) and the stream-segmented recognizer
//!   (`distscroll++`),
//! * [`buttons`] — up/down keys with typematic repeat, the mainstream
//!   phone-keypad baseline,
//! * [`wheel`] — a ratchet scroll wheel flicked a few detents at a time
//!   (the Radial-Scroll / wheel family),
//! * [`tilt`] — rate control by device tilt à la Bartlett's
//!   Rock'n'Scroll, read through the ADXL311 model,
//! * [`yoyo`] — Rantanen et al.'s garment-mounted pull-string wheel:
//!   positional control like DistScroll but mechanical,
//! * [`tuister`] — the two-handed tangible rotation interface, included
//!   because its "both hands have to be used" limitation is the paper's
//!   core motivation.
//!
//! Every technique runs a *closed perception–action loop* (the user only
//! sees the display at discrete visual samples, acts after reaction
//! delays, and corrects overshoot), so the selection times and error
//! rates come out of the same behavioural machinery rather than being
//! hand-assigned.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buttons;
pub mod distscroll;
pub mod technique;
pub mod tilt;
pub mod tuister;
pub mod wheel;
pub mod yoyo;

pub use technique::{ScrollTechnique, TrialResult, TrialSetup};

/// A thread-safe technique constructor: plain function pointers are
/// `Copy + Send + Sync`, so parallel cohort workers can each build
/// their own instance instead of sharing one `&mut` across users.
pub type TechniqueCtor = fn() -> Box<dyn ScrollTechnique>;

/// Constructors for every technique, DistScroll first — the standard
/// lineup the experiments sweep.
pub fn all_technique_ctors() -> Vec<TechniqueCtor> {
    vec![
        || Box::new(distscroll::DistScrollTechnique::paper()),
        || Box::new(distscroll::DistScrollTechnique::segmented()),
        || Box::new(buttons::ButtonsTechnique::new()),
        || Box::new(wheel::WheelTechnique::new()),
        || Box::new(tilt::TiltTechnique::new()),
        || Box::new(yoyo::YoyoTechnique::new()),
        || Box::new(tuister::TuisterTechnique::new()),
    ]
}

/// Constructs every technique, DistScroll first — the standard lineup
/// the experiments sweep.
pub fn all_techniques() -> Vec<Box<dyn ScrollTechnique>> {
    all_technique_ctors()
        .into_iter()
        .map(|ctor| ctor())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_is_complete_and_distinct() {
        let ts = all_techniques();
        assert_eq!(ts.len(), 7);
        let names: std::collections::BTreeSet<&str> = ts.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), 7);
        assert!(names.contains("distscroll"));
        assert!(names.contains("distscroll++"));
        let one_handed = ts.iter().filter(|t| t.hands_required() == 1).count();
        assert_eq!(one_handed, 6, "only the tuister needs both hands");
    }
}
