//! The common trial interface all scrolling techniques implement.
//!
//! A *trial* is the unit the Hinckley-style scrolling studies measure:
//! starting from a known entry, select a given target entry in a menu of
//! `n` entries. A technique runs the whole closed loop (user model ⇄
//! device model) and reports how long it took, what got selected and how
//! many corrective actions were needed.

use distscroll_user::population::UserParams;
use rand::rngs::StdRng;

/// One selection task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialSetup {
    /// Number of entries in the (flat) menu.
    pub n_entries: usize,
    /// Entry the cursor starts on.
    pub start_idx: usize,
    /// Entry to select.
    pub target_idx: usize,
    /// 1-based trial number for the practice curve.
    pub trial_number: u32,
}

impl TrialSetup {
    /// Validates the indices against the menu size.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn new(n_entries: usize, start_idx: usize, target_idx: usize, trial_number: u32) -> Self {
        assert!(start_idx < n_entries, "start index outside the menu");
        assert!(target_idx < n_entries, "target index outside the menu");
        TrialSetup {
            n_entries,
            start_idx,
            target_idx,
            trial_number,
        }
    }

    /// The task's scroll distance in entries.
    pub fn distance(&self) -> usize {
        self.target_idx.abs_diff(self.start_idx)
    }
}

/// What happened in one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// Time from trial start to the select action, seconds (simulated).
    pub time_s: f64,
    /// The entry actually selected; `None` if the trial timed out.
    pub selected_idx: Option<usize>,
    /// Whether the selected entry was the target.
    pub correct: bool,
    /// Corrective actions (extra reaches, extra presses, reversals).
    pub corrections: u32,
}

impl TrialResult {
    /// A timed-out trial.
    pub fn timeout(time_s: f64, corrections: u32) -> Self {
        TrialResult {
            time_s,
            selected_idx: None,
            correct: false,
            corrections,
        }
    }
}

/// Trial timeout, seconds of simulated time.
pub const TRIAL_TIMEOUT_S: f64 = 30.0;

/// A scrolling technique that can run selection trials.
pub trait ScrollTechnique {
    /// Short lowercase identifier (used in tables and benches).
    fn name(&self) -> &'static str;

    /// How many hands the technique occupies (the paper's design goal is
    /// exactly one; the TUISTER needs two).
    fn hands_required(&self) -> u8 {
        1
    }

    /// Runs one closed-loop trial for `user` on `setup`, drawing all
    /// stochasticity from `rng`.
    fn run_trial(&mut self, user: &UserParams, setup: &TrialSetup, rng: &mut StdRng)
        -> TrialResult;
}

/// Standard-normal variate shared by the baseline models.
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    use rand::Rng;
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_distance_is_symmetric() {
        let a = TrialSetup::new(16, 2, 12, 1);
        let b = TrialSetup::new(16, 12, 2, 1);
        assert_eq!(a.distance(), 10);
        assert_eq!(b.distance(), 10);
    }

    #[test]
    #[should_panic(expected = "target index outside the menu")]
    fn target_must_fit() {
        let _ = TrialSetup::new(8, 0, 8, 1);
    }

    #[test]
    fn timeout_result_is_incorrect() {
        let r = TrialResult::timeout(30.0, 5);
        assert!(!r.correct);
        assert_eq!(r.selected_idx, None);
    }
}
