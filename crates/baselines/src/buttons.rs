//! Up/down buttons with typematic repeat — the mainstream baseline.
//!
//! The paper positions DistScroll against "inputting … via a keypad"
//! (Section 1), the way every phone of the era scrolled its menus: an
//! up/down rocker, one entry per press, auto-repeat when held. The model
//! runs the standard closed loop: after a reaction delay the user either
//! taps (short distances) or holds for auto-repeat (long distances),
//! releases when their discretely-sampled view of the cursor says they
//! are close, and finishes with single corrective taps before pressing
//! select. Overshoot comes from exactly where it does in reality: the
//! repeat keeps firing during the user's release latency.

use distscroll_user::perception::VisualSampler;
use distscroll_user::population::UserParams;
use rand::rngs::StdRng;
use rand::Rng;

use crate::technique::{ScrollTechnique, TrialResult, TrialSetup, TRIAL_TIMEOUT_S};

/// Typematic initial delay, seconds (standard keyboard default).
const REPEAT_DELAY_S: f64 = 0.50;
/// Typematic repeat rate, presses per second.
const REPEAT_RATE_HZ: f64 = 10.0;
/// Distance at or above which users hold instead of tapping.
const HOLD_THRESHOLD: usize = 5;

/// The up/down-buttons technique.
#[derive(Debug, Clone, Default)]
pub struct ButtonsTechnique {
    _priv: (),
}

impl ButtonsTechnique {
    /// A standard rocker with typematic repeat.
    pub fn new() -> Self {
        ButtonsTechnique::default()
    }
}

impl ScrollTechnique for ButtonsTechnique {
    fn name(&self) -> &'static str {
        "buttons"
    }

    fn run_trial(
        &mut self,
        user: &UserParams,
        setup: &TrialSetup,
        rng: &mut StdRng,
    ) -> TrialResult {
        let practice = user.practice_factor(setup.trial_number);
        let dt = 0.01;
        let mut t = 0.0;
        let mut cursor = setup.start_idx as i64;
        let target = setup.target_idx as i64;
        let n = setup.n_entries as i64;
        let mut sampler = VisualSampler::new(user.perception.visual_sampling_s);
        let mut corrections = 0u32;

        #[derive(PartialEq)]
        enum Phase {
            React,
            Holding {
                since: f64,
                pressed: u32,
                release_at: Option<f64>,
            },
            Tapping {
                next_press: f64,
            },
            Verify {
                since: Option<f64>,
            },
            Done {
                at: f64,
            },
        }

        let mut phase = Phase::React;
        let react_until = user.perception.reaction_time_s(rng) * practice;
        let keystroke = user.keystroke_s * practice;
        let mut direction_changes = 0;
        let mut last_dir = 0i64;

        while t < TRIAL_TIMEOUT_S {
            let seen = sampler
                .observe(t, cursor.max(0) as usize)
                .unwrap_or(setup.start_idx) as i64;
            match phase {
                Phase::React => {
                    if t >= react_until {
                        let dist = (target - cursor).unsigned_abs() as usize;
                        phase = if dist >= HOLD_THRESHOLD {
                            Phase::Holding {
                                since: t,
                                pressed: 0,
                                release_at: None,
                            }
                        } else {
                            Phase::Tapping { next_press: t }
                        };
                    }
                }
                Phase::Holding {
                    since,
                    ref mut pressed,
                    ref mut release_at,
                } => {
                    let dir = (target - cursor).signum();
                    if dir != 0 && dir != last_dir && last_dir != 0 {
                        direction_changes += 1;
                    }
                    if dir != 0 {
                        last_dir = dir;
                    }
                    // Typematic engine: first repeat after the delay, then
                    // at the repeat rate.
                    let held = t - since;
                    let due = if held < REPEAT_DELAY_S {
                        if *pressed == 0 {
                            Some(0)
                        } else {
                            None
                        }
                    } else {
                        let n_due = 1 + ((held - REPEAT_DELAY_S) * REPEAT_RATE_HZ) as u32;
                        (n_due > *pressed).then_some(n_due)
                    };
                    if let Some(n_due) = due {
                        let dir = if *pressed == 0 {
                            (target - cursor).signum()
                        } else {
                            last_dir
                        };
                        cursor = (cursor + dir * i64::from(n_due - *pressed)).clamp(0, n - 1);
                        *pressed = n_due;
                    }
                    // Decide to release when the *seen* cursor is close;
                    // the release lands a release-latency later.
                    match release_at {
                        None => {
                            if (target - seen).unsigned_abs() <= 2 {
                                *release_at = Some(t + user.perception.reaction_time_s(rng) * 0.6);
                            }
                        }
                        Some(at) => {
                            if t >= *at {
                                phase = Phase::Tapping {
                                    next_press: t + keystroke,
                                };
                            }
                        }
                    }
                }
                Phase::Tapping { ref mut next_press } => {
                    if cursor == target && seen == target {
                        phase = Phase::Verify { since: None };
                    } else if t >= *next_press {
                        let dir = (target - seen).signum();
                        if dir != 0 {
                            if dir != last_dir && last_dir != 0 {
                                direction_changes += 1;
                            }
                            last_dir = dir;
                            // Occasional double-press slip.
                            let step = if rng.gen_bool(0.02) { 2 } else { 1 };
                            cursor = (cursor + dir * step).clamp(0, n - 1);
                            if step == 2 {
                                corrections += 1;
                            }
                        }
                        *next_press = t + keystroke;
                    }
                }
                Phase::Verify { ref mut since } => {
                    if seen == target {
                        let started = *since.get_or_insert(t);
                        let dwell = user.dwell_s * practice.sqrt();
                        let impulsive = rng.gen_bool((user.impulsivity * practice * dt).min(1.0));
                        if t - started >= dwell || impulsive {
                            phase = Phase::Done { at: t + keystroke };
                        }
                    } else {
                        *since = None;
                        phase = Phase::Tapping { next_press: t };
                        corrections += 1;
                    }
                }
                Phase::Done { at } => {
                    if t >= at {
                        // The select press lands on the *true* cursor; a
                        // stale verification can make this wrong.
                        let selected = cursor.max(0) as usize;
                        return TrialResult {
                            time_s: t,
                            selected_idx: Some(selected),
                            correct: selected == setup.target_idx,
                            corrections: corrections + direction_changes,
                        };
                    }
                }
            }
            t += dt;
        }
        TrialResult::timeout(t, corrections)
    }
}

/// Analytic expectation for sanity checks: taps at one keystroke each
/// plus reaction and selection overheads.
pub fn expected_tap_time_s(user: &UserParams, distance: usize) -> f64 {
    user.perception.reaction_mean_s
        + distance as f64 * user.keystroke_s
        + user.dwell_s
        + user.keystroke_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(setup: TrialSetup, seed: u64) -> TrialResult {
        let mut tech = ButtonsTechnique::new();
        let mut rng = StdRng::seed_from_u64(seed);
        tech.run_trial(&UserParams::expert(), &setup, &mut rng)
    }

    #[test]
    fn short_hops_are_quick_and_correct() {
        for seed in 0..20 {
            let r = run(TrialSetup::new(16, 4, 6, 50), seed);
            assert!(r.correct, "seed {seed}: {r:?}");
            assert!(r.time_s < 3.0, "two taps should be fast: {}", r.time_s);
        }
    }

    #[test]
    fn long_distances_engage_auto_repeat() {
        // 30 entries at ~4.5 presses/s of tapping would cost ≥ 6 s; with
        // auto-repeat it must land well under that.
        let r = run(TrialSetup::new(64, 0, 40, 50), 1);
        assert!(r.correct);
        assert!(r.time_s < 8.5, "auto-repeat must engage: {}", r.time_s);
        assert!(r.time_s > 2.0, "but repeat is not free: {}", r.time_s);
    }

    #[test]
    fn scroll_time_grows_with_distance() {
        let avg = |target: usize| {
            (0..10)
                .map(|s| run(TrialSetup::new(64, 0, target, 50), s).time_s)
                .sum::<f64>()
                / 10.0
        };
        assert!(avg(40) > avg(3));
    }

    #[test]
    fn nearly_all_trials_end_correct() {
        let correct = (0..40)
            .filter(|&s| run(TrialSetup::new(32, 2, 20, 50), s).correct)
            .count();
        assert!(
            correct >= 35,
            "buttons are a precise technique: {correct}/40"
        );
    }

    #[test]
    fn zero_distance_needs_only_confirmation() {
        let r = run(TrialSetup::new(8, 3, 3, 50), 0);
        assert!(r.correct);
        assert!(r.time_s < 1.5);
    }
}
