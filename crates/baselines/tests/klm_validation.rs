//! Cross-validation: the closed-loop simulation vs. the Keystroke-Level
//! Model.
//!
//! Two independent routes to the same quantity: the simulation *builds*
//! selection times from sensor physics, firmware and motor control; the
//! KLM *predicts* them by summing standard operator costs. They will not
//! agree exactly (KLM has no corrections, no noise), but an expert's
//! simulated mean must land within a factor of two of the analytic
//! prediction — the accepted accuracy band of the KLM itself. If this
//! test fails, either the user model or a device model has drifted out
//! of human plausibility.

use distscroll_baselines::buttons::ButtonsTechnique;
use distscroll_baselines::distscroll::DistScrollTechnique;
use distscroll_baselines::tuister::TuisterTechnique;
use distscroll_baselines::{ScrollTechnique, TrialSetup};
use distscroll_user::klm;
use distscroll_user::population::UserParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn simulated_mean(tech: &mut dyn ScrollTechnique, setup: TrialSetup, reps: u64) -> f64 {
    let user = UserParams::expert();
    let mut total = 0.0;
    let mut n = 0;
    for seed in 0..reps {
        let mut rng = StdRng::seed_from_u64(seed * 7919 + 13);
        let r = tech.run_trial(&user, &setup, &mut rng);
        if r.correct {
            total += r.time_s;
            n += 1;
        }
    }
    assert!(n as f64 >= reps as f64 * 0.7, "most trials must succeed");
    total / f64::from(n)
}

fn within_factor_two(simulated: f64, predicted: f64) -> bool {
    simulated > predicted / 2.0 && simulated < predicted * 2.0
}

#[test]
fn distscroll_simulation_agrees_with_the_klm() {
    let mut tech = DistScrollTechnique::paper();
    // A mid-distance selection in an 8-entry menu: M + P + R + K.
    let sim = simulated_mean(&mut tech, TrialSetup::new(8, 1, 5, 50), 15);
    let klm = klm::distscroll_selection_practiced();
    assert!(
        within_factor_two(sim, klm),
        "distscroll: simulated {sim:.2} s vs KLM {klm:.2} s"
    );
}

#[test]
fn buttons_simulation_agrees_with_the_klm() {
    let mut tech = ButtonsTechnique::new();
    for distance in [2usize, 4] {
        let sim = simulated_mean(&mut tech, TrialSetup::new(12, 0, distance, 50), 20);
        let klm = klm::buttons_selection_practiced(distance);
        assert!(
            within_factor_two(sim, klm),
            "buttons d={distance}: simulated {sim:.2} s vs KLM {klm:.2} s"
        );
    }
}

#[test]
fn tuister_simulation_agrees_with_the_klm() {
    let mut tech = TuisterTechnique::new();
    let sim = simulated_mean(&mut tech, TrialSetup::new(8, 1, 4, 50), 20);
    let klm = klm::tuister_selection_practiced();
    assert!(
        within_factor_two(sim, klm),
        "tuister: simulated {sim:.2} s vs KLM {klm:.2} s"
    );
}

#[test]
fn klm_and_simulation_agree_on_the_ordering_of_techniques() {
    // For a short selection, both routes should agree that dedicated
    // buttons beat the two-handed tuister.
    let mut buttons = ButtonsTechnique::new();
    let mut tuister = TuisterTechnique::new();
    let setup = TrialSetup::new(8, 2, 4, 50);
    let sim_buttons = simulated_mean(&mut buttons, setup, 20);
    let sim_tuister = simulated_mean(&mut tuister, setup, 20);
    assert!(
        sim_buttons < sim_tuister,
        "{sim_buttons:.2} vs {sim_tuister:.2}"
    );
    assert!(klm::buttons_selection_practiced(2) < klm::tuister_selection_practiced());
}
