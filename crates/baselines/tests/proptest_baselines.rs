//! Property tests over every scrolling technique: whatever the task and
//! seed, trials terminate with sane, reproducible results.

use distscroll_baselines::{all_techniques, TrialSetup};
use distscroll_user::population::UserParams;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // The full-device distscroll trials are comparatively slow; keep the
    // case count moderate.
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn every_technique_terminates_with_sane_results(
        n in 4usize..=12,
        start_frac in 0.0f64..1.0,
        target_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let start = ((start_frac * n as f64) as usize).min(n - 1);
        let mut target = ((target_frac * n as f64) as usize).min(n - 1);
        if target == start {
            target = (target + 1) % n;
        }
        let setup = TrialSetup::new(n, start, target, 50);
        for tech in all_techniques().iter_mut() {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = tech.run_trial(&UserParams::expert(), &setup, &mut rng);
            prop_assert!(r.time_s >= 0.0, "{}: negative time", tech.name());
            prop_assert!(r.time_s <= 31.0, "{}: past the timeout", tech.name());
            if let Some(idx) = r.selected_idx {
                prop_assert!(idx < n, "{}: selected outside the menu", tech.name());
                prop_assert_eq!(r.correct, idx == target, "{}: correctness flag lies", tech.name());
            } else {
                prop_assert!(!r.correct, "{}: timeout cannot be correct", tech.name());
            }
        }
    }

    #[test]
    fn trials_are_deterministic_per_seed(
        seed in any::<u64>(),
        target in 1usize..8,
    ) {
        let setup = TrialSetup::new(8, 0, target, 50);
        for tech_pair in [0usize, 1, 2, 3, 4, 5] {
            let run = || {
                let mut techs = all_techniques();
                let mut rng = StdRng::seed_from_u64(seed);
                techs[tech_pair].run_trial(&UserParams::typical(), &setup, &mut rng)
            };
            prop_assert_eq!(run(), run());
        }
    }
}
