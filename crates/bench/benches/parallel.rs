//! Serial vs parallel harness benches.
//!
//! Two fan-out levels are timed against their forced-serial twins:
//!
//! * `run_cohort` — one technique, one cohort, users chunked over the
//!   shared worker pool,
//! * `run_all` — the whole 14-experiment suite at quick effort, where
//!   the per-experiment `run_cohort` fan-outs nest inside the
//!   experiment fan-out and borrow from one global token budget.
//!
//! The parallel variants must produce byte-identical records (the
//! determinism tests assert it; the cohort bench re-asserts cheaply),
//! so the only thing allowed to differ is the wall clock. The pool
//! clamps granted tokens to the core count, so on a single-core
//! machine both variants run the same serial path and are expected to
//! tie; record a baseline with `--save-baseline` before reading
//! anything into deltas.
//! Run with `cargo bench -p distscroll-bench --bench parallel`.

use criterion::{criterion_group, criterion_main, Criterion};
use distscroll_baselines::distscroll::DistScrollTechnique;
use distscroll_baselines::ScrollTechnique;
use distscroll_bench::BENCH_SEED;
use distscroll_eval::experiments::{run_all, set_jobs, Effort};
use distscroll_eval::runner::run_cohort;
use distscroll_user::population::{sample_cohort, UserParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_cohort(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let cohort: Vec<UserParams> = sample_cohort(8, &mut rng);
    let factory = || Box::new(DistScrollTechnique::paper()) as Box<dyn ScrollTechnique>;
    let expected = run_cohort(&factory, &cohort, 10, 8, BENCH_SEED, 1);

    c.bench_function("run_cohort_serial_jobs1", |b| {
        b.iter(|| run_cohort(&factory, &cohort, 10, 8, BENCH_SEED, 1))
    });
    c.bench_function("run_cohort_parallel_auto", |b| {
        b.iter(|| {
            let records = run_cohort(&factory, &cohort, 10, 8, BENCH_SEED, 0);
            assert_eq!(records, expected, "parallel cohort diverged from serial");
            records
        })
    });
}

fn bench_run_all(c: &mut Criterion) {
    set_jobs(1);
    c.bench_function("run_all_quick_serial_jobs1", |b| {
        b.iter(|| run_all(Effort::Quick, BENCH_SEED))
    });
    set_jobs(0);
    c.bench_function("run_all_quick_parallel_auto", |b| {
        b.iter(|| run_all(Effort::Quick, BENCH_SEED))
    });
}

criterion_group! {
    name = cohort;
    config = Criterion::default().sample_size(10);
    targets = bench_cohort
}

criterion_group! {
    name = suite;
    config = Criterion::default().sample_size(3);
    targets = bench_run_all
}

criterion_main!(cohort, suite);
