//! Microbenches of the simulation's hot paths.
//!
//! These are the per-tick costs that bound how fast the closed-loop
//! experiments can run: the sensor physics, the two recognizers behind
//! the firmware, the island lookup, the frame codec, and one full
//! device tick.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use distscroll_bench::BENCH_SEED;
use distscroll_core::device::DistScrollDevice;
use distscroll_core::mapping::{paper_curve, IslandMap};
use distscroll_core::menu::Menu;
use distscroll_core::profile::DeviceProfile;
use distscroll_hw::link::{encode_frame, FrameDecoder};
use distscroll_recognizer::{ClassicChain, ClassicConfig, Recognizer, Segmented, SegmentedConfig};
use distscroll_sensors::environment::Scene;
use distscroll_sensors::gp2d120::Gp2d120;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sensor_measure(c: &mut Criterion) {
    let mut sensor = Gp2d120::typical();
    let scene = Scene::lab();
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    c.bench_function("gp2d120_measure", |b| {
        b.iter(|| sensor.measure(black_box(&scene), &mut rng))
    });
}

fn bench_classic_chain(c: &mut Criterion) {
    // The legacy filter chain behind the recognizer trait: this is the
    // per-sample cost on the firmware's default path, and the `classic`
    // half of the BENCH_eval.json `recognizer` object.
    let mut chain = ClassicChain::new(&ClassicConfig::paper());
    let mut code = 0u16;
    let mut tick = 0u64;
    c.bench_function("recognizer_classic_tick", |b| {
        b.iter(|| {
            code = (code + 7) % 700;
            tick += 1;
            chain.process(black_box(code), tick)
        })
    });
}

fn bench_segmented_recognizer(c: &mut Criterion) {
    // The segmented state-machine recognizer on the same stream: the
    // `segmented` half of the BENCH_eval.json `recognizer` object.
    let mut seg = Segmented::new(SegmentedConfig {
        curve: paper_curve(),
        near_cm: 4.0,
        far_cm: 30.0,
        tick_ms: 10,
    });
    let mut code = 0u16;
    let mut tick = 0u64;
    c.bench_function("recognizer_segmented_tick", |b| {
        b.iter(|| {
            code = (code + 7) % 700;
            tick += 1;
            seg.process(black_box(code), tick)
        })
    });
}

fn bench_island_lookup(c: &mut Criterion) {
    let curve = paper_curve();
    let map = IslandMap::build(12, 4.0, 30.0, 0.35, &curve).expect("12 entries fit");
    let mut code = 0u16;
    c.bench_function("island_lookup", |b| {
        b.iter(|| {
            code = (code + 7) % 700;
            map.lookup(black_box(code))
        })
    });
}

fn bench_frame_codec(c: &mut Criterion) {
    let payload = [b'T', 1, 2, 3, 4, 5];
    c.bench_function("frame_encode_decode", |b| {
        b.iter(|| {
            let frame = encode_frame(black_box(&payload));
            let mut dec = FrameDecoder::new();
            dec.push_all(&frame)
        })
    });
}

fn bench_device_tick(c: &mut Criterion) {
    let mut dev = DistScrollDevice::new(DeviceProfile::paper(), Menu::flat(8), BENCH_SEED);
    // Criterion runs millions of iterations = simulated *hours*: a real
    // 9 V block would brown out mid-bench, so fit an effectively
    // infinite cell.
    dev.set_battery(distscroll_hw::power::Battery::with_capacity(1e12));
    dev.set_distance(15.0);
    c.bench_function("device_full_tick", |b| {
        b.iter(|| dev.tick().expect("healthy device"))
    });
}

fn bench_tick_and_poll(c: &mut Criterion) {
    // The steady-state loop every experiment trial spins: one firmware
    // tick plus a sink-based drain of both streams. With the borrow-based
    // poll API this path is allocation-free (crates/core/tests/zero_alloc.rs
    // proves it); the bench watches that it stays cheap too.
    let mut dev = DistScrollDevice::new(DeviceProfile::pda_addon(), Menu::flat(8), BENCH_SEED);
    dev.set_battery(distscroll_hw::power::Battery::with_capacity(1e12));
    dev.set_distance(15.0);
    c.bench_function("device_tick_and_poll", |b| {
        b.iter(|| {
            dev.tick().expect("healthy device");
            let mut events = 0u32;
            let mut frames = 0u32;
            dev.poll_events(&mut |_: &distscroll_core::events::TimedEvent| events += 1);
            dev.poll_telemetry(&mut |_: &distscroll_hw::board::Telemetry| frames += 1);
            black_box((events, frames))
        })
    });
}

fn bench_decode_throughput(c: &mut Criterion) {
    // The host-side decode hot path: a single-shard StreamDecoder fed a
    // framed record stream, measured in bytes (criterion's throughput
    // mode reports bytes/sec). Mirrors the `decode` object the v4
    // BENCH_eval.json records.
    use distscroll_host::telemetry::StreamDecoder;
    let mut corpus = Vec::new();
    let mut stamp = 0u16;
    while corpus.len() < 64 << 10 {
        stamp = stamp.wrapping_add(25);
        let code = 0x0200 | (stamp & 0xff);
        corpus.extend_from_slice(&encode_frame(&[
            b'T',
            (stamp >> 8) as u8,
            (stamp & 0xff) as u8,
            (code >> 8) as u8,
            (code & 0xff) as u8,
            (stamp % 5) as u8,
            1,
            (stamp % 8) as u8,
        ]));
        corpus.extend_from_slice(&encode_frame(&[
            b'E',
            (stamp >> 8) as u8,
            (stamp & 0xff) as u8,
            b'H',
            2,
        ]));
    }
    // One iteration decodes the whole 64 KiB corpus: bytes/sec =
    // corpus.len() / the reported per-iteration time.
    c.bench_function("stream_decode_64k", |b| {
        b.iter(|| {
            let mut dec = StreamDecoder::new();
            let mut records = 0u64;
            dec.push_bytes_with(black_box(&corpus), |_rec| records += 1);
            black_box(records)
        })
    });
}

fn bench_curve_fit(c: &mut Criterion) {
    let points: Vec<(f64, f64)> = (4..=30)
        .map(|d| {
            (
                f64::from(d),
                distscroll_sensors::gp2d120::ideal_voltage(f64::from(d)),
            )
        })
        .collect();
    c.bench_function("inverse_curve_fit", |b| {
        b.iter(|| distscroll_sensors::calibrate::fit_inverse_curve(black_box(&points)))
    });
}

criterion_group!(
    micro,
    bench_sensor_measure,
    bench_classic_chain,
    bench_segmented_recognizer,
    bench_island_lookup,
    bench_frame_codec,
    bench_device_tick,
    bench_tick_and_poll,
    bench_decode_throughput,
    bench_curve_fit
);
criterion_main!(micro);
