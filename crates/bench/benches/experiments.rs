//! One Criterion group per reproduced figure and experiment.
//!
//! Each bench runs the exact experiment code from `distscroll-eval` at
//! quick effort: the measured time is "how long it takes to regenerate
//! this figure", and regressions here mean the simulation stack got
//! slower. Run with `cargo bench -p distscroll-bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use distscroll_bench::BENCH_SEED;
use distscroll_eval::experiments::{self, Effort};

macro_rules! experiment_bench {
    ($fn_name:ident, $module:ident, $label:literal) => {
        fn $fn_name(c: &mut Criterion) {
            c.bench_function($label, |b| {
                b.iter(|| {
                    let report = experiments::$module::run(Effort::Quick, BENCH_SEED);
                    assert!(report.shape_holds, "bench must keep reproducing the paper");
                    report
                })
            });
        }
    };
}

experiment_bench!(bench_fig4, fig4, "fig4_sensor_curve");
experiment_bench!(bench_fig5, fig5, "fig5_loglog_fit");
experiment_bench!(bench_islands, islands, "island_mapping");
experiment_bench!(bench_study, study, "user_study");
experiment_bench!(bench_shootout, shootout, "technique_shootout");
experiment_bench!(bench_range, range_sweep, "range_sweep");
experiment_bench!(bench_direction, direction, "direction_mapping");
experiment_bench!(bench_long_menus, long_menus, "long_menus");
experiment_bench!(bench_fastscroll, fastscroll, "fastscroll");
experiment_bench!(bench_robustness, robustness, "robustness");
experiment_bench!(bench_ablation, ablation, "ablation");
experiment_bench!(bench_buttons, button_layout, "button_layout");
experiment_bench!(bench_pda, pda, "pda_addon");
experiment_bench!(bench_link, link, "link_reliability");

criterion_group! {
    name = cheap;
    config = Criterion::default().sample_size(20);
    targets = bench_fig4, bench_fig5, bench_islands, bench_link
}

criterion_group! {
    name = heavy;
    config = Criterion::default().sample_size(10);
    targets = bench_study, bench_shootout, bench_range, bench_direction,
              bench_long_menus, bench_fastscroll, bench_robustness, bench_ablation,
              bench_buttons, bench_pda
}

criterion_main!(cheap, heavy);
