//! One Criterion bench per registered experiment.
//!
//! Each bench runs the exact experiment code from `distscroll-eval` at
//! quick effort: the measured time is "how long it takes to regenerate
//! this figure", and regressions here mean the simulation stack got
//! slower. The benches enumerate `experiments::REGISTRY`, so a newly
//! registered experiment is benched without touching this file. Run
//! with `cargo bench -p distscroll-bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use distscroll_bench::BENCH_SEED;
use distscroll_eval::experiments::{Effort, REGISTRY};

fn bench_registry(c: &mut Criterion, cheap: bool) {
    for e in REGISTRY.iter().filter(|e| e.cheap() == cheap) {
        c.bench_function(e.id(), |b| {
            b.iter(|| {
                let report = e.run(Effort::Quick, BENCH_SEED);
                assert!(report.shape_holds, "bench must keep reproducing the paper");
                report
            })
        });
    }
}

fn cheap_experiments(c: &mut Criterion) {
    bench_registry(c, true);
}

fn heavy_experiments(c: &mut Criterion) {
    bench_registry(c, false);
}

criterion_group! {
    name = cheap;
    config = Criterion::default().sample_size(20);
    targets = cheap_experiments
}

criterion_group! {
    name = heavy;
    config = Criterion::default().sample_size(10);
    targets = heavy_experiments
}

criterion_main!(cheap, heavy);
