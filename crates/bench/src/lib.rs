//! Bench support crate.
//!
//! The benches themselves live in `benches/`: one Criterion group per
//! reproduced figure/experiment (running the same code as
//! `distscroll-eval` at [`Effort::Quick`]) plus microbenches of the hot
//! paths (sensor model, filter chain, island lookup, frame codec).
//!
//! [`Effort::Quick`]: distscroll_eval::experiments::Effort

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seed used by every bench so numbers are comparable across runs.
pub const BENCH_SEED: u64 = 20050607;
