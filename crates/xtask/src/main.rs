//! Repo task driver, `cargo xtask` style: plain Rust instead of shell
//! for anything that must behave identically on every machine.
//!
//! ```text
//! cargo run -p xtask -- lint                 # scan the workspace; exit 1 on findings
//! cargo run -p xtask -- lint --json F        # also write machine-readable diagnostics
//! cargo run -p xtask -- lint --sarif-out F   # also write a SARIF 2.1.0 report
//! cargo run -p xtask -- lint --rule NAME     # only report the named rule(s)
//! cargo run -p xtask -- lint --no-cache      # ignore target/lint-cache
//! cargo run -p xtask -- lint --self-test     # prove the scanner catches its fixtures
//! cargo run -p xtask -- lint --rules         # list the rule set
//!
//! cargo run -p xtask -- fuzz                 # fuzz the wire front door; exit 1 on violation
//! cargo run -p xtask -- fuzz --iters N       # mutated inputs per target (default 10000)
//! cargo run -p xtask -- fuzz --seed S        # run seed (default 20050607)
//! cargo run -p xtask -- fuzz --target NAME   # frame | stream | arq (repeatable)
//! cargo run -p xtask -- fuzz --grow          # persist new-signature inputs into the corpus
//! cargo run -p xtask -- fuzz --init-corpus   # write the built-in seeds and exit
//! cargo run -p xtask -- fuzz --replay        # corpus replay only, no mutation
//! ```
//!
//! Exit codes: `0` clean, `1` violations found (or a fixture the
//! scanner failed to flag), `2` usage / I/O errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use distscroll_fuzz::{corpus, FuzzConfig, TargetKind};
use distscroll_lint::{
    diagnostics_to_json, diagnostics_to_sarif, scan_workspace_with, self_test, Rule, ScanOptions,
    ALL_RULES,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--json FILE] [--sarif-out FILE] [--rule NAME]... \
         [--no-cache] [--self-test] [--rules] [--root DIR]\n\
         \x20      cargo run -p xtask -- fuzz [--iters N] [--seed S] [--target NAME]... \
         [--corpus DIR] [--out DIR] [--grow] [--init-corpus] [--replay] [--root DIR]"
    );
    ExitCode::from(2)
}

/// The workspace root: two levels above this crate's manifest dir.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(args.collect()),
        Some("fuzz") => fuzz(args.collect()),
        _ => usage(),
    }
}

fn fuzz(args: Vec<String>) -> ExitCode {
    let root = default_root();
    let mut cfg = FuzzConfig {
        corpus_dir: root.join("fuzz").join("corpus"),
        out_dir: root.join("target").join("fuzz"),
        ..FuzzConfig::default()
    };
    let mut explicit_targets: Vec<TargetKind> = Vec::new();
    let mut init_corpus = false;
    let mut replay_only = false;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => cfg.iters = n,
                _ => return usage(),
            },
            "--seed" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => cfg.seed = s,
                _ => return usage(),
            },
            "--target" => match it.next().as_deref().map(TargetKind::parse) {
                Some(Some(kind)) => {
                    if !explicit_targets.contains(&kind) {
                        explicit_targets.push(kind);
                    }
                }
                _ => {
                    eprintln!("fuzz: unknown target — known targets: frame, stream, arq");
                    return ExitCode::from(2);
                }
            },
            "--corpus" => match it.next() {
                Some(dir) => cfg.corpus_dir = PathBuf::from(dir),
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(dir) => cfg.out_dir = PathBuf::from(dir),
                None => return usage(),
            },
            "--root" => match it.next() {
                Some(dir) => {
                    let r = PathBuf::from(dir);
                    cfg.corpus_dir = r.join("fuzz").join("corpus");
                    cfg.out_dir = r.join("target").join("fuzz");
                }
                None => return usage(),
            },
            "--grow" => cfg.grow = true,
            "--init-corpus" => init_corpus = true,
            "--replay" => replay_only = true,
            _ => return usage(),
        }
    }
    if !explicit_targets.is_empty() {
        cfg.targets = explicit_targets;
    }
    if replay_only {
        cfg.iters = 0;
    }

    if init_corpus {
        let seeds = corpus::builtin_seeds();
        let mut written = 0usize;
        for seed in &seeds {
            match corpus::save(&cfg.corpus_dir, seed) {
                Ok(_) => written += 1,
                Err(e) => {
                    eprintln!("fuzz: cannot write corpus entry: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        println!(
            "fuzz: wrote {written} seed(s) to {}",
            cfg.corpus_dir.display()
        );
        return ExitCode::SUCCESS;
    }

    let reports = match distscroll_fuzz::run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fuzz: error — {e}");
            return ExitCode::from(2);
        }
    };

    let mut total_execs = 0u64;
    let mut total_violations = 0usize;
    for r in &reports {
        total_execs += r.executions;
        total_violations += r.violations.len();
        println!(
            "fuzz: {:6} — {} execution(s) ({} corpus), {} signature(s), {} violation(s)",
            r.target,
            r.executions,
            r.corpus_entries,
            r.new_signatures,
            r.violations.len()
        );
        for v in &r.violations {
            let origin = match v.iteration {
                Some(i) => format!("iteration {i}"),
                None => "corpus replay".to_string(),
            };
            eprintln!(
                "fuzz: VIOLATION [{}] at {origin} (seed {}): {}",
                v.target, cfg.seed, v.message
            );
            eprintln!(
                "fuzz:   reproducer: {} ({} bytes, minimized from {})",
                v.repro_path.display(),
                v.minimized_len,
                v.input_len
            );
        }
    }
    if total_violations == 0 {
        println!(
            "fuzz: PASS — {total_execs} execution(s), 0 violations (seed {})",
            cfg.seed
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("fuzz: FAIL — {total_violations} violation(s) in {total_execs} execution(s)");
        ExitCode::FAILURE
    }
}

fn lint(args: Vec<String>) -> ExitCode {
    let mut json_out: Option<String> = None;
    let mut sarif_out: Option<String> = None;
    let mut rule_filter: Vec<Rule> = Vec::new();
    let mut use_cache = true;
    let mut run_self_test = false;
    let mut list_rules = false;
    let mut root = default_root();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(path) => json_out = Some(path),
                None => return usage(),
            },
            "--sarif-out" => match it.next() {
                Some(path) => sarif_out = Some(path),
                None => return usage(),
            },
            "--rule" => match it.next().as_deref().map(Rule::from_name) {
                Some(Some(rule)) => {
                    if !rule_filter.contains(&rule) {
                        rule_filter.push(rule);
                    }
                }
                Some(None) => {
                    eprintln!(
                        "lint: unknown rule — known rules: {}",
                        ALL_RULES
                            .iter()
                            .map(|r| r.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return ExitCode::from(2);
                }
                None => return usage(),
            },
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--no-cache" => use_cache = false,
            "--self-test" => run_self_test = true,
            "--rules" => list_rules = true,
            _ => return usage(),
        }
    }

    if list_rules {
        for rule in ALL_RULES {
            println!("{:20} {}", rule.name(), rule.describe());
        }
        println!("total: {} rules", ALL_RULES.len());
        return ExitCode::SUCCESS;
    }

    if run_self_test {
        let fixtures = root.join("crates").join("lint").join("fixtures");
        return match self_test(&fixtures) {
            Ok(summaries) => {
                for s in &summaries {
                    println!("self-test: {s}");
                }
                println!(
                    "self-test: PASS — {} fixtures, every rule exercised, SARIF validated",
                    summaries.len()
                );
                ExitCode::SUCCESS
            }
            Err(distscroll_lint::LintError::Fixture(msg)) => {
                eprintln!("self-test: FAIL — {msg}");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("self-test: error — {e}");
                ExitCode::from(2)
            }
        };
    }

    let mut report = match scan_workspace_with(&root, ScanOptions { use_cache }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: error — {e}");
            return ExitCode::from(2);
        }
    };
    if !rule_filter.is_empty() {
        report.diagnostics.retain(|d| rule_filter.contains(&d.rule));
    }

    if let Some(path) = &json_out {
        let doc = diagnostics_to_json(
            &report.diagnostics,
            report.files_scanned,
            &report.cache,
            &report.index.stats(),
        );
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("lint: wrote {path}");
    }
    if let Some(path) = &sarif_out {
        let doc = diagnostics_to_sarif(&report.diagnostics);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("lint: wrote {path}");
    }

    for d in &report.diagnostics {
        println!("{d}");
    }
    let cache_note = if report.cache.enabled {
        format!(
            " (cache: {} hit(s), {} miss(es))",
            report.cache.hits, report.cache.misses
        )
    } else {
        " (cache off)".to_string()
    };
    if report.diagnostics.is_empty() {
        println!(
            "lint: PASS — {} files scanned, 0 violations{cache_note}",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "lint: FAIL — {} violation(s) across {} files scanned{cache_note}",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
