//! Repo task driver, `cargo xtask` style: plain Rust instead of shell
//! for anything that must behave identically on every machine.
//!
//! ```text
//! cargo run -p xtask -- lint              # scan the workspace; exit 1 on findings
//! cargo run -p xtask -- lint --json F     # also write machine-readable diagnostics
//! cargo run -p xtask -- lint --self-test  # prove the scanner catches its fixtures
//! cargo run -p xtask -- lint --rules      # list the rule set
//! ```
//!
//! Exit codes: `0` clean, `1` violations found (or a fixture the
//! scanner failed to flag), `2` usage / I/O errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use distscroll_lint::{diagnostics_to_json, scan_workspace, self_test, ALL_RULES};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--json FILE] [--self-test] [--rules] [--root DIR]"
    );
    ExitCode::from(2)
}

/// The workspace root: two levels above this crate's manifest dir.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(args.collect()),
        _ => usage(),
    }
}

fn lint(args: Vec<String>) -> ExitCode {
    let mut json_out: Option<String> = None;
    let mut run_self_test = false;
    let mut list_rules = false;
    let mut root = default_root();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(path) => json_out = Some(path),
                None => return usage(),
            },
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--self-test" => run_self_test = true,
            "--rules" => list_rules = true,
            _ => return usage(),
        }
    }

    if list_rules {
        for rule in ALL_RULES {
            println!("{:18} {}", rule.name(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    if run_self_test {
        let fixtures = root.join("crates").join("lint").join("fixtures");
        return match self_test(&fixtures) {
            Ok(summaries) => {
                for s in &summaries {
                    println!("self-test: {s}");
                }
                println!(
                    "self-test: PASS — {} fixtures, every rule exercised",
                    summaries.len()
                );
                ExitCode::SUCCESS
            }
            Err(distscroll_lint::LintError::Fixture(msg)) => {
                eprintln!("self-test: FAIL — {msg}");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("self-test: error — {e}");
                ExitCode::from(2)
            }
        };
    }

    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: error — {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_out {
        let json = diagnostics_to_json(&report.diagnostics, report.files_scanned);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("lint: wrote {path}");
    }

    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.diagnostics.is_empty() {
        println!(
            "lint: PASS — {} files scanned, 0 violations",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "lint: FAIL — {} violation(s) across {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
