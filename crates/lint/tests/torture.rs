//! Torture tests: the lexer/parser and the rule scanner must be *total*
//! functions of their input — never panic, always terminate, and produce
//! identical diagnostics when run twice over the same text.
//!
//! Three input regimes, in increasing structure:
//!
//! 1. raw byte soup (lossy-decoded to UTF-8),
//! 2. concatenations of adversarial Rust fragments — nested block
//!    comments, raw strings with `#` fences, char literals containing
//!    `"` and `{`, half-open delimiters of every kind,
//! 3. systematically unbalanced comment/raw-string nesting.
//!
//! None of these need to *mean* anything; the scanner's contract is that
//! a file it cannot make sense of yields a deterministic (possibly
//! empty) diagnostic list, not a crash or a hang.

use distscroll_lint::parse::{parse_file, LexState};
use distscroll_lint::rules::scan_parsed;
use distscroll_lint::FileContext;
use proptest::collection::vec;
use proptest::prelude::*;

/// Scan `text` as if it lived at a deterministic-crate path (the
/// strictest context: every rule armed) and render the diagnostics.
fn scan_rendered(text: &str) -> Vec<String> {
    let ctx = FileContext::classify("crates/host/src/torture.rs");
    let parsed = parse_file(text);
    scan_parsed(&parsed, &ctx)
        .iter()
        .map(|d| d.to_string())
        .collect()
}

/// Adversarial source fragments. Individually innocuous; concatenated
/// in random order they produce exactly the half-open comment, fence,
/// and literal states that hand-rolled lexers get wrong.
const FRAGMENTS: &[&str] = &[
    // Block-comment machinery, including pre-nested openers.
    "/*",
    "*/",
    "/* /* nested */ still open",
    "/* lint:allow(wall-clock) inside comment */",
    // Raw strings with 0-2 `#` fences, both halves separately.
    "r\"plain raw\"",
    "r#\"",
    "\"#",
    "r##\"contains \"# but not the fence\"##",
    "let s = r#\"// lint:allow(raw-seq)\"#;",
    // Char literals holding the characters the string lexer keys on.
    "'\"'",
    "'{'",
    "'}'",
    "'\\''",
    "'\\\\'",
    // Lifetimes look like unterminated char literals.
    "fn f<'a>(x: &'a str) {}",
    // Plain strings hiding comment markers.
    "\"// not a comment\"",
    "\"/* not open\"",
    // Tokens the rules key on, so rule code paths run too.
    "let guard = m.lock();",
    "pool.par_map(|x| x);",
    "// lint:allow(wall-clock) torn suppression",
    "let t = std::time::Instant::now();",
    "seq.raw() + 1",
    "let s: Seq16 = x;",
    "#[cfg(test)]",
    "unsafe {",
    // Structure and whitespace.
    "fn torn(",
    "{",
    "}",
    "\n",
    "\t ",
];

/// Assemble a source text from fragment indices and a separator choice.
fn assemble(picks: &[usize], sep: usize, noise: &str) -> String {
    let sep = [" ", "\n", ""][sep % 3];
    let mut parts: Vec<&str> = picks
        .iter()
        .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
        .collect();
    parts.push(noise);
    parts.join(sep)
}

proptest! {
    // Regime 1: arbitrary bytes. The parser sees whatever
    // `from_utf8_lossy` makes of them and must stay total.
    #[test]
    fn byte_soup_never_panics_and_is_deterministic(
        bytes in vec(any::<u8>(), 0..512),
    ) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let first = scan_rendered(&text);
        let second = scan_rendered(&text);
        prop_assert_eq!(first, second);
    }

    // Regime 2: adversarial fragment soup. Exercises every lexer mode
    // transition (line/block comment, string, raw string, char) across
    // random boundaries, plus the rule scanner on top.
    #[test]
    fn fragment_soup_never_panics_and_is_deterministic(
        picks in vec(0usize..30, 0..40),
        sep in 0usize..3,
        noise in "[ -~]{0,16}",
    ) {
        let text = assemble(&picks, sep, &noise);
        let first = scan_rendered(&text);
        let second = scan_rendered(&text);
        prop_assert_eq!(first, second);

        // Structural invariants of the parse itself.
        let parsed = parse_file(&text);
        let n_lines = text.lines().count();
        prop_assert_eq!(parsed.lines.len(), n_lines);
        for item in &parsed.items {
            prop_assert!(item.line >= 1 && item.line <= n_lines.max(1));
            prop_assert!(item.end_line >= item.line);
        }
        for b in &parsed.bindings {
            prop_assert!(b.line >= 1 && b.line <= n_lines.max(1));
        }
    }

    // Regime 3: systematically unbalanced nesting. `open` block-comment
    // openers, `close` closers, with a raw string of `fences` hashes
    // wedged in between — the lexer must resolve to *some* state and
    // carry it identically across a re-lex.
    #[test]
    fn unbalanced_nesting_terminates(
        open in 0usize..8,
        close in 0usize..8,
        fences in 0usize..4,
        tail in "[ -~]{0,16}",
    ) {
        let mut text = String::new();
        for _ in 0..open {
            text.push_str("/* ");
        }
        let fence = "#".repeat(fences);
        text.push_str(&format!("r{fence}\"body\"{fence} "));
        for _ in 0..close {
            text.push_str(" */");
        }
        text.push('\n');
        text.push_str(&tail);

        let first = scan_rendered(&text);
        let second = scan_rendered(&text);
        prop_assert_eq!(first, second);

        // The low-level splitter is deterministic too: lexing the same
        // line twice from the same state yields the same split.
        let mut s1 = LexState::default();
        let mut s2 = LexState::default();
        for line in text.lines() {
            let a = s1.split(line);
            let b = s2.split(line);
            prop_assert_eq!(a.code, b.code);
            prop_assert_eq!(a.comment, b.comment);
        }
    }
}
