//! The workspace symbol index: crate → module (file) → items, built
//! as a by-product of the scan. Warm runs rebuild it from cached
//! entries without re-parsing, so `--json` always reports the same
//! index shape whether the cache was cold or hot.

use std::collections::BTreeMap;

use crate::parse::{Item, ItemKind};
use crate::rules::FileContext;

/// Everything the index keeps per module (one `.rs` file).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModuleSymbols {
    /// Items in source order.
    pub items: Vec<Item>,
    /// How many `let` bindings the parser recovered in the file.
    pub bindings: usize,
}

/// Aggregate counts over the whole index, surfaced in the JSON report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Distinct crates seen.
    pub crates: usize,
    /// Files (modules) indexed.
    pub modules: usize,
    /// `fn` items.
    pub fns: usize,
    /// `impl` blocks.
    pub impls: usize,
    /// `use` declarations.
    pub uses: usize,
    /// `let` bindings recovered across all function bodies.
    pub bindings: usize,
}

/// The index proper: deterministic iteration order throughout
/// (`BTreeMap`), because its stats land in a diffable artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolIndex {
    crates: BTreeMap<String, BTreeMap<String, ModuleSymbols>>,
}

impl SymbolIndex {
    /// Records one file's parse products under its crate.
    pub fn add_file(&mut self, path: &str, items: Vec<Item>, bindings: usize) {
        let crate_name = FileContext::classify(path).crate_name;
        self.crates
            .entry(crate_name)
            .or_default()
            .insert(path.to_string(), ModuleSymbols { items, bindings });
    }

    /// Aggregate counts for reporting.
    pub fn stats(&self) -> IndexStats {
        let mut s = IndexStats {
            crates: self.crates.len(),
            ..IndexStats::default()
        };
        for modules in self.crates.values() {
            s.modules += modules.len();
            for m in modules.values() {
                s.bindings += m.bindings;
                for item in &m.items {
                    match item.kind {
                        ItemKind::Fn => s.fns += 1,
                        ItemKind::Impl => s.impls += 1,
                        ItemKind::Use => s.uses += 1,
                        _ => {}
                    }
                }
            }
        }
        s
    }

    /// Every definition of `name`, as `(path, item)` pairs in
    /// deterministic (crate, path, source) order.
    pub fn lookup<'a>(&'a self, name: &str) -> Vec<(&'a str, &'a Item)> {
        let mut out = Vec::new();
        for modules in self.crates.values() {
            for (path, m) in modules {
                for item in &m.items {
                    if item.name == name {
                        out.push((path.as_str(), item));
                    }
                }
            }
        }
        out
    }

    /// The modules indexed for one crate, if any.
    pub fn modules_of(&self, crate_name: &str) -> Option<&BTreeMap<String, ModuleSymbols>> {
        self.crates.get(crate_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn indexed(path: &str, text: &str, index: &mut SymbolIndex) {
        let parsed = parse_file(text);
        index.add_file(path, parsed.items, parsed.bindings.len());
    }

    #[test]
    fn stats_count_kinds_across_crates() {
        let mut index = SymbolIndex::default();
        indexed(
            "crates/core/src/menu.rs",
            "use std::fmt;\npub fn a() {}\npub fn b() { let x = 1; }\nimpl M {}\n",
            &mut index,
        );
        indexed("crates/hw/src/arq.rs", "pub fn c() {}\n", &mut index);
        let s = index.stats();
        assert_eq!(s.crates, 2);
        assert_eq!(s.modules, 2);
        assert_eq!(s.fns, 3);
        assert_eq!(s.impls, 1);
        assert_eq!(s.uses, 1);
        assert_eq!(s.bindings, 1);
    }

    #[test]
    fn lookup_finds_definitions_in_deterministic_order() {
        let mut index = SymbolIndex::default();
        indexed("crates/hw/src/board.rs", "pub fn poll() {}\n", &mut index);
        indexed("crates/core/src/menu.rs", "pub fn poll() {}\n", &mut index);
        let hits = index.lookup("poll");
        assert_eq!(
            hits.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec!["crates/core/src/menu.rs", "crates/hw/src/board.rs"],
            "BTreeMap order: core before hw"
        );
        assert!(index.lookup("missing").is_empty());
    }
}
