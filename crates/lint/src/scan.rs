//! Workspace discovery: which files the linter looks at.
//!
//! The walk is deterministic (directory entries are sorted) so the
//! diagnostic order — and the JSON artifact CI uploads — is stable
//! across machines, the same property the scanner exists to enforce
//! elsewhere.

use std::path::{Path, PathBuf};

use crate::rules::{scan_source, FileContext};
use crate::{Diagnostic, LintError};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "results"];

/// Workspace-relative prefixes excluded from the scan: vendored crates
/// (tracking upstream APIs, not held to the workspace bar — the same
/// set the clippy CI job excludes) and the linter's own known-bad
/// fixtures.
const SKIP_PREFIXES: &[&str] = &[
    "crates/rand/",
    "crates/proptest/",
    "crates/criterion/",
    "crates/lint/fixtures/",
];

/// The outcome of a workspace scan.
#[derive(Debug)]
pub struct ScanReport {
    /// Every finding, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

/// Walks `root` and scans every non-vendored `.rs` file.
///
/// # Errors
///
/// Returns [`LintError::Io`] when a directory or file cannot be read —
/// the scan is all-or-nothing so a permissions problem cannot silently
/// shrink coverage.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, LintError> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut diagnostics = Vec::new();
    for rel in &files {
        let abs = root.join(rel);
        let text = std::fs::read_to_string(&abs).map_err(|source| LintError::Io {
            path: abs.clone(),
            source,
        })?;
        let ctx = FileContext::classify(rel);
        diagnostics.extend(scan_source(&text, &ctx));
    }
    Ok(ScanReport {
        diagnostics,
        files_scanned: files.len(),
    })
}

/// Recursively collects workspace-relative `/`-separated `.rs` paths.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();

    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name.starts_with('.') {
            continue;
        }
        let rel = relative_slash_path(root, &path);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            let rel_dir = format!("{rel}/");
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel_dir.starts_with(p) || *p == rel_dir)
            {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") && !SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            out.push(rel);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators regardless of platform.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        // crates/lint -> crates -> workspace root
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .unwrap_or_default()
    }

    #[test]
    fn workspace_scan_is_clean_and_covers_the_tree() {
        let report = scan_workspace(&workspace_root()).expect("workspace scan must run");
        assert!(
            report.files_scanned > 60,
            "expected to scan the whole first-party tree, got {} files",
            report.files_scanned
        );
        let rendered: Vec<String> = report.diagnostics.iter().map(ToString::to_string).collect();
        assert!(
            report.diagnostics.is_empty(),
            "workspace must lint clean:\n{}",
            rendered.join("\n")
        );
    }

    #[test]
    fn vendored_crates_and_fixtures_are_excluded() {
        let report = scan_workspace(&workspace_root()).expect("workspace scan must run");
        // Re-walk to inspect the file list indirectly: scan a second
        // time and ensure no diagnostic ever points into an excluded
        // prefix (they contain known-bad code on purpose).
        for d in &report.diagnostics {
            for p in SKIP_PREFIXES {
                assert!(!d.file.starts_with(p), "{} should be excluded", d.file);
            }
        }
        assert!(report.files_scanned > 0);
    }
}
