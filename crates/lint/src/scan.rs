//! Workspace discovery and the scan driver: which files the linter
//! looks at, and how the per-file cache and the symbol index thread
//! through a run.
//!
//! The walk is deterministic (directory entries are sorted) so the
//! diagnostic order — and the JSON artifact CI uploads — is stable
//! across machines, the same property the scanner exists to enforce
//! elsewhere. The cache never changes the output, only whether a file
//! is re-parsed: a hit replays the stored diagnostics and index rows,
//! a miss scans fresh and stores them.

use std::path::{Path, PathBuf};

use crate::cache::{CacheEntry, CacheStats, ScanCache};
use crate::index::SymbolIndex;
use crate::parse::parse_file;
use crate::rules::{scan_parsed, FileContext};
use crate::{Diagnostic, LintError};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "results"];

/// Workspace-relative prefixes excluded from the scan: vendored crates
/// (tracking upstream APIs, not held to the workspace bar — the same
/// set the clippy CI job excludes) and the linter's own known-bad
/// fixtures.
const SKIP_PREFIXES: &[&str] = &[
    "crates/rand/",
    "crates/proptest/",
    "crates/criterion/",
    "crates/lint/fixtures/",
];

/// Knobs for one workspace scan.
#[derive(Debug, Clone, Copy)]
pub struct ScanOptions {
    /// Consult and update `target/lint-cache/cache.json`.
    pub use_cache: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions { use_cache: true }
    }
}

/// The outcome of a workspace scan.
#[derive(Debug)]
pub struct ScanReport {
    /// Every finding, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were scanned (hits + misses).
    pub files_scanned: usize,
    /// Cache accounting for this run.
    pub cache: CacheStats,
    /// The workspace symbol index built (or replayed) by the scan.
    pub index: SymbolIndex,
}

/// Walks `root` and scans every non-vendored `.rs` file with the
/// default options (cache on).
///
/// # Errors
///
/// Returns [`LintError::Io`] when a directory or file cannot be read —
/// the scan is all-or-nothing so a permissions problem cannot silently
/// shrink coverage.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, LintError> {
    scan_workspace_with(root, ScanOptions::default())
}

/// [`scan_workspace`] with explicit options.
///
/// # Errors
///
/// Returns [`LintError::Io`] when a directory or file cannot be read.
pub fn scan_workspace_with(root: &Path, opts: ScanOptions) -> Result<ScanReport, LintError> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut cache = if opts.use_cache {
        ScanCache::load(root)
    } else {
        ScanCache::default()
    };
    let mut stats = CacheStats {
        enabled: opts.use_cache,
        ..CacheStats::default()
    };
    let mut index = SymbolIndex::default();
    let mut diagnostics = Vec::new();

    for rel in &files {
        let abs = root.join(rel);
        let text = std::fs::read_to_string(&abs).map_err(|source| LintError::Io {
            path: abs.clone(),
            source,
        })?;
        let hash = crate::cache::content_hash(&text);
        if let Some(entry) = cache.get(rel, hash) {
            stats.hits += 1;
            diagnostics.extend(entry.diags.iter().cloned());
            index.add_file(rel, entry.items.clone(), entry.bindings);
            continue;
        }
        stats.misses += 1;
        let parsed = parse_file(&text);
        let ctx = FileContext::classify(rel);
        let diags = scan_parsed(&parsed, &ctx);
        index.add_file(rel, parsed.items.clone(), parsed.bindings.len());
        if opts.use_cache {
            cache.put(
                rel,
                CacheEntry {
                    hash,
                    diags: diags.clone(),
                    items: parsed.items,
                    bindings: parsed.bindings.len(),
                },
            );
        }
        diagnostics.extend(diags);
    }
    if opts.use_cache {
        cache.save(root);
    }
    Ok(ScanReport {
        diagnostics,
        files_scanned: files.len(),
        cache: stats,
        index,
    })
}

/// Recursively collects workspace-relative `/`-separated `.rs` paths.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();

    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name.starts_with('.') {
            continue;
        }
        let rel = relative_slash_path(root, &path);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            let rel_dir = format!("{rel}/");
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel_dir.starts_with(p) || *p == rel_dir)
            {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") && !SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            out.push(rel);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators regardless of platform.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        // crates/lint -> crates -> workspace root
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .unwrap_or_default()
    }

    /// Uncached scan so the test result reflects the sources as they
    /// are, never a stale cache file.
    fn scan_fresh() -> ScanReport {
        scan_workspace_with(&workspace_root(), ScanOptions { use_cache: false })
            .expect("workspace scan must run")
    }

    #[test]
    fn workspace_scan_is_clean_and_covers_the_tree() {
        let report = scan_fresh();
        assert!(
            report.files_scanned > 60,
            "expected to scan the whole first-party tree, got {} files",
            report.files_scanned
        );
        let rendered: Vec<String> = report.diagnostics.iter().map(ToString::to_string).collect();
        assert!(
            report.diagnostics.is_empty(),
            "workspace must lint clean:\n{}",
            rendered.join("\n")
        );
    }

    #[test]
    fn vendored_crates_and_fixtures_are_excluded() {
        let report = scan_fresh();
        for d in &report.diagnostics {
            for p in SKIP_PREFIXES {
                assert!(!d.file.starts_with(p), "{} should be excluded", d.file);
            }
        }
        assert!(report.files_scanned > 0);
    }

    #[test]
    fn symbol_index_covers_the_workspace() {
        let report = scan_fresh();
        let stats = report.index.stats();
        assert!(stats.crates >= 8, "crates indexed: {}", stats.crates);
        assert!(stats.fns > 200, "fns indexed: {}", stats.fns);
        assert!(stats.impls > 30, "impls indexed: {}", stats.impls);
        assert!(stats.bindings > 500, "bindings indexed: {}", stats.bindings);
        // A symbol that must exist: the ARQ sequence type's home.
        assert!(
            report
                .index
                .lookup("Seq16")
                .iter()
                .any(|(p, _)| *p == "crates/hw/src/arq.rs"),
            "Seq16 must be indexed in crates/hw/src/arq.rs"
        );
    }

    #[test]
    fn warm_cache_replays_identical_diagnostics_and_index() {
        // Use a private temp copy of the cache dir semantics: scan the
        // real tree twice with the cache on. The second run must be
        // all hits and byte-identical in its products.
        let root = workspace_root();
        let cold = scan_workspace_with(&root, ScanOptions { use_cache: true })
            .expect("cold scan must run");
        let warm = scan_workspace_with(&root, ScanOptions { use_cache: true })
            .expect("warm scan must run");
        assert_eq!(warm.cache.misses, 0, "warm run must re-scan nothing");
        assert_eq!(warm.cache.hits, warm.files_scanned);
        assert_eq!(cold.diagnostics, warm.diagnostics);
        assert_eq!(cold.index.stats(), warm.index.stats());
    }
}
