//! SARIF 2.1.0 emission — the interchange format code-scanning UIs
//! ingest. One `run` from one tool (`distscroll-lint`), a
//! `reportingDescriptor` per rule in [`ALL_RULES`] order, and one
//! `result` per diagnostic whose `ruleIndex` points back into that
//! table. The output is deterministic: same diagnostics in, same bytes
//! out, because CI diffs artifacts across runs.

use crate::json_escape;
use crate::rules::{ALL_RULES, RULES_VERSION};
use crate::Diagnostic;

/// Renders diagnostics as a complete SARIF 2.1.0 document.
pub fn diagnostics_to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(4096 + diags.len() * 256);
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"distscroll-lint\",\n");
    out.push_str(&format!(
        "          \"version\": \"{RULES_VERSION}.0.0\",\n"
    ));
    out.push_str("          \"informationUri\": \"https://github.com/distscroll/distscroll\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        out.push_str("            {\n");
        out.push_str(&format!(
            "              \"id\": \"{}\",\n",
            json_escape(rule.name())
        ));
        out.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": \"{}\" }},\n",
            json_escape(rule.name())
        ));
        out.push_str(&format!(
            "              \"fullDescription\": {{ \"text\": \"{}\" }},\n",
            json_escape(rule.describe())
        ));
        out.push_str("              \"defaultConfiguration\": { \"level\": \"error\" }\n");
        out.push_str(if i + 1 == ALL_RULES.len() {
            "            }\n"
        } else {
            "            },\n"
        });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let rule_index = ALL_RULES
            .iter()
            .position(|r| *r == d.rule)
            .unwrap_or_default();
        out.push_str("        {\n");
        out.push_str(&format!(
            "          \"ruleId\": \"{}\",\n",
            json_escape(d.rule.name())
        ));
        out.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{ \"text\": \"{}\" }},\n",
            json_escape(&d.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": \"{}\" }},\n",
            json_escape(&d.file)
        ));
        out.push_str(&format!(
            "                \"region\": {{ \"startLine\": {}, \"snippet\": {{ \"text\": \
             \"{}\" }} }}\n",
            d.line,
            json_escape(&d.snippet)
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(if i + 1 == diags.len() {
            "        }\n"
        } else {
            "        },\n"
        });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::rules::Rule;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                file: "crates/eval/src/runner.rs".to_string(),
                line: 42,
                rule: Rule::WallClock,
                message: "wall-clock read with \"quotes\" and\nnewline".to_string(),
                snippet: "let t = Instant::now();".to_string(),
            },
            Diagnostic {
                file: "crates/host/src/session.rs".to_string(),
                line: 7,
                rule: Rule::SerialArith,
                message: "raw arithmetic".to_string(),
                snippet: "if stamp < last {".to_string(),
            },
        ]
    }

    #[test]
    fn sarif_is_valid_json_with_one_rules_entry_per_rule() {
        let doc = diagnostics_to_sarif(&sample());
        let v = json::parse(&doc).expect("SARIF must parse as JSON");
        assert_eq!(v.get("version").and_then(|x| x.as_str()), Some("2.1.0"));
        let runs = v.get("runs").and_then(|r| r.as_arr()).expect("runs array");
        assert_eq!(runs.len(), 1);
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(|r| r.as_arr())
            .expect("driver rules");
        assert_eq!(rules.len(), ALL_RULES.len());
        for (rule, entry) in ALL_RULES.iter().zip(rules) {
            assert_eq!(entry.get("id").and_then(|i| i.as_str()), Some(rule.name()));
        }
    }

    #[test]
    fn results_point_back_into_the_rule_table() {
        let doc = diagnostics_to_sarif(&sample());
        let v = json::parse(&doc).expect("valid JSON");
        let results = v.get("runs").and_then(|r| r.as_arr()).unwrap()[0]
            .get("results")
            .and_then(|r| r.as_arr())
            .expect("results array");
        assert_eq!(results.len(), 2);
        for res in results {
            let id = res.get("ruleId").and_then(|i| i.as_str()).expect("ruleId");
            let idx = res
                .get("ruleIndex")
                .and_then(|i| i.as_usize())
                .expect("ruleIndex");
            assert_eq!(ALL_RULES[idx].name(), id);
            let loc = &res.get("locations").and_then(|l| l.as_arr()).unwrap()[0];
            let region = loc
                .get("physicalLocation")
                .and_then(|p| p.get("region"))
                .expect("region");
            assert!(region.get("startLine").and_then(|l| l.as_usize()).is_some());
        }
    }

    #[test]
    fn empty_diagnostics_still_emit_a_complete_run() {
        let doc = diagnostics_to_sarif(&[]);
        let v = json::parse(&doc).expect("valid JSON");
        let runs = v.get("runs").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(
            runs[0]
                .get("results")
                .and_then(|r| r.as_arr())
                .map(<[_]>::len),
            Some(0)
        );
    }

    #[test]
    fn emission_is_deterministic() {
        assert_eq!(
            diagnostics_to_sarif(&sample()),
            diagnostics_to_sarif(&sample())
        );
    }
}
