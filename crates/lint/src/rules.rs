//! The rule set and the per-file line/token scanner.
//!
//! The scanner is deliberately *not* a Rust parser: it strips comments
//! and string literals with a small character-level state machine
//! (enough to never match a forbidden token inside a doc comment or a
//! format string), tracks `#[cfg(test)]` module bodies by brace depth,
//! and then pattern-matches rule tokens against the remaining code
//! text. That keeps the linter dependency-free, fast, and auditable —
//! the same trade clippy's `disallowed_methods` makes, but owned by the
//! repo and scoped by workspace path.

use crate::Diagnostic;

/// Every lint rule the scanner knows, in stable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Threading primitives outside the sanctioned executor crate.
    ThreadDiscipline,
    /// Wall-clock reads in deterministic evaluation paths.
    WallClock,
    /// Ambient (OS-seeded) randomness in deterministic evaluation paths.
    AmbientRng,
    /// Unordered hash collections in report-feeding library code.
    UnorderedIter,
    /// `unsafe` outside the allowlisted module or without a SAFETY comment.
    UnsafeAudit,
    /// Panicking calls in library code outside tests.
    PanicHygiene,
    /// Legacy allocate-per-poll event/telemetry drains outside `crates/core`.
    EventDrain,
    /// Raw ARQ sequence-number construction outside `crates/hw`.
    RawSeq,
    /// Raw `StreamDecoder` construction inside `crates/ingest` outside
    /// the shard registry.
    RawDecoder,
    /// Manual clock stepping / fixed-tick driving outside the scheduler
    /// crate and `#[cfg(test)]` regions.
    FixedTick,
    /// A `lint:allow` pragma that is unusable as written.
    BadPragma,
}

/// All rules, in the order they are documented and reported.
pub const ALL_RULES: &[Rule] = &[
    Rule::ThreadDiscipline,
    Rule::WallClock,
    Rule::AmbientRng,
    Rule::UnorderedIter,
    Rule::UnsafeAudit,
    Rule::PanicHygiene,
    Rule::EventDrain,
    Rule::RawSeq,
    Rule::RawDecoder,
    Rule::FixedTick,
    Rule::BadPragma,
];

impl Rule {
    /// The stable kebab-case id used in pragmas, JSON and fixtures.
    pub fn name(self) -> &'static str {
        match self {
            Rule::ThreadDiscipline => "thread-discipline",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::UnorderedIter => "unordered-iter",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::EventDrain => "event-drain",
            Rule::RawSeq => "raw-seq",
            Rule::RawDecoder => "raw-decoder",
            Rule::FixedTick => "fixed-tick",
            Rule::BadPragma => "bad-pragma",
        }
    }

    /// Resolves a pragma/fixture rule id; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// One-line description, shown by `xtask lint --rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::ThreadDiscipline => {
                "thread::spawn / thread::scope / thread::Builder / rayon outside crates/par — \
                 all parallelism must flow through the shared pool's token budget"
            }
            Rule::WallClock => {
                "Instant::now / SystemTime::now in core/eval/baselines/host library code — \
                 wall-clock reads make eval output machine-dependent"
            }
            Rule::AmbientRng => {
                "thread_rng / rand::random / from_entropy / OsRng in core/eval/baselines/host \
                 library code — all stochasticity must flow from the experiment seed"
            }
            Rule::UnorderedIter => {
                "HashMap / HashSet in first-party library code — iteration order feeds reports; \
                 use BTreeMap / BTreeSet or a sorted Vec"
            }
            Rule::UnsafeAudit => {
                "unsafe outside the audited allowlist (par::pool, core's counting-allocator \
                 test), or without a `// SAFETY:` comment justifying it"
            }
            Rule::PanicHygiene => {
                "unwrap / expect / panic! / unreachable! / todo! / unimplemented! in library \
                 code outside tests — fail through Result like summarize()"
            }
            Rule::EventDrain => {
                "drain_events / drain_telemetry outside crates/core — the owned-Vec poll \
                 allocates per tick; visit with poll_events/poll_telemetry or reuse a \
                 scratch buffer via the drain_*_into forms"
            }
            Rule::RawSeq => {
                "Seq16::from_raw outside crates/hw — device and host code receive ARQ \
                 sequence numbers from decode_data/decode_ack and never construct their own, \
                 so serial-number comparisons stay in one audited module"
            }
            Rule::RawDecoder => {
                "StreamDecoder construction in crates/ingest outside src/shard.rs — every \
                 fleet session lives in exactly one shard's books; ask the shard registry \
                 for a session instead of opening a decoder at the call site"
            }
            Rule::FixedTick => {
                "SimClock::advance / board.step / manual tick stepping outside crates/hw and \
                 #[cfg(test)] regions — register a deadline with the event scheduler \
                 (distscroll_hw::sched) and let the device dispatch advance time"
            }
            Rule::BadPragma => "a lint:allow pragma naming an unknown rule or carrying no reason",
        }
    }
}

/// What kind of source a file is, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code — the strictest scope.
    Lib,
    /// A binary entry point (`main.rs`, `src/bin/…`, `build.rs`).
    Bin,
    /// Integration tests, benches or examples.
    TestLike,
}

/// Path-derived facts the rules scope themselves by.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate directory name under `crates/`, or `"distscroll"` for the
    /// root package.
    pub crate_name: String,
    /// Library / binary / test-like classification.
    pub kind: FileKind,
}

/// Crates whose library code must be free of wall-clock and ambient
/// randomness: everything on the path from a seed to a report.
const DETERMINISTIC_CRATES: &[&str] = &["core", "eval", "baselines", "host", "ingest"];

/// The only modules allowed to contain `unsafe` (and every block there
/// must carry a SAFETY comment): the worker pool, and the counting
/// allocators backing the two zero-allocation regression tests.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/par/src/pool.rs",
    "crates/core/tests/zero_alloc.rs",
    "crates/host/tests/zero_alloc_decode.rs",
];

impl FileContext {
    /// Classifies a workspace-relative path (`/`-separated).
    pub fn classify(path: &str) -> FileContext {
        let parts: Vec<&str> = path.split('/').collect();
        let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
            parts[1].to_string()
        } else {
            "distscroll".to_string()
        };
        let file_name = parts.last().copied().unwrap_or_default();
        let test_like = parts
            .iter()
            .any(|p| matches!(*p, "tests" | "benches" | "examples"));
        let kind = if test_like {
            FileKind::TestLike
        } else if file_name == "main.rs" || file_name == "build.rs" || parts.contains(&"bin") {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        FileContext {
            path: path.to_string(),
            crate_name,
            kind,
        }
    }

    fn is_deterministic_crate(&self) -> bool {
        DETERMINISTIC_CRATES.contains(&self.crate_name.as_str())
    }

    fn unsafe_allowlisted(&self) -> bool {
        UNSAFE_ALLOWLIST.contains(&self.path.as_str())
    }
}

/// One line split into its code and comment parts.
struct SplitLine {
    /// The line with comments and string-literal *contents* blanked.
    code: String,
    /// Concatenated comment text on the line (line + block comments).
    comment: String,
}

/// Character-level state carried across lines: block comments and
/// multi-line string literals.
#[derive(Default)]
struct LexState {
    in_block_comment: bool,
    /// `Some(hashes)` inside a (raw) string literal; `hashes` is the
    /// `#` count of a raw string, 0 for a normal `"…"` literal.
    in_string: Option<usize>,
}

impl LexState {
    /// Splits one physical line, updating the cross-line state.
    fn split(&mut self, line: &str) -> SplitLine {
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if self.in_block_comment {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    self.in_block_comment = false;
                    i += 2;
                } else {
                    comment.push(chars[i]);
                    i += 1;
                }
                continue;
            }
            if let Some(hashes) = self.in_string {
                // Inside a string literal: blank the contents so code
                // patterns never match inside text.
                if chars[i] == '\\' && hashes == 0 {
                    i += 2; // skip the escaped character
                    continue;
                }
                if chars[i] == '"' {
                    let closes = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                    if closes {
                        self.in_string = None;
                        code.push('"');
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
                continue;
            }
            match chars[i] {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    comment.push_str(&chars[i + 2..].iter().collect::<String>());
                    break;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    self.in_block_comment = true;
                    i += 2;
                }
                '"' => {
                    code.push('"');
                    self.in_string = Some(0);
                    i += 1;
                }
                'r' if chars.get(i + 1) == Some(&'"')
                    || (chars.get(i + 1) == Some(&'#')
                        && matches!(chars.get(i + 2), Some(&'#') | Some(&'"'))) =>
                {
                    // Raw string: r"…" or r#"…"# (any hash depth).
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        code.push('"');
                        self.in_string = Some(hashes);
                        i = j + 1;
                    } else {
                        code.push(chars[i]);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal or lifetime. A char literal closes
                    // within a few characters ('x', '\n', '\u{..}');
                    // a lifetime has no closing quote before a
                    // non-ident char — pass it through unchanged.
                    if let Some(close) = close_of_char_literal(&chars, i) {
                        code.push('\'');
                        i = close + 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        SplitLine { code, comment }
    }
}

/// If `chars[start]` opens a char literal, returns the index of its
/// closing quote; `None` for lifetimes.
fn close_of_char_literal(chars: &[char], start: usize) -> Option<usize> {
    let mut j = start + 1;
    if chars.get(j) == Some(&'\\') {
        // Escaped char: find the next unescaped quote within a short
        // window (covers \n, \', \u{1F600}).
        let limit = (start + 12).min(chars.len());
        j += 1;
        while j < limit {
            if chars[j] == '\'' {
                return Some(j);
            }
            j += 1;
        }
        return None;
    }
    // 'x' — exactly one character then a quote; anything else is a
    // lifetime like 'static or 'a.
    if chars.get(j).is_some() && chars.get(j + 1) == Some(&'\'') {
        return Some(j + 1);
    }
    None
}

/// Is `text[pos..pos+len]` a standalone token (not part of a larger
/// identifier)?
fn word_bounded(text: &str, pos: usize, len: usize) -> bool {
    let is_word = |c: char| c.is_alphanumeric() || c == '_';
    let before = text[..pos].chars().next_back();
    let after = text[pos + len..].chars().next();
    !before.is_some_and(is_word) && !after.is_some_and(is_word)
}

/// Does `code` contain `pat` as a word-bounded token?
fn has_token(code: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find(pat) {
        let pos = from + rel;
        if word_bounded(code, pos, pat.len()) {
            return true;
        }
        from = pos + pat.len();
    }
    false
}

/// A parsed allow pragma: the named rules plus the reason's length.
struct Pragma {
    rules: Vec<Result<Rule, String>>,
    reason_len: usize,
}

/// Extracts a pragma from a line's comment text, if any.
fn parse_pragma(comment: &str) -> Option<Pragma> {
    let start = comment.find("lint:allow(")?;
    let rest = &comment[start + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rules = rest[..close]
        .split(',')
        .map(|name| {
            let name = name.trim();
            Rule::from_name(name).ok_or_else(|| name.to_string())
        })
        .collect();
    let reason = rest[close + 1..].trim();
    Some(Pragma {
        rules,
        reason_len: reason.len(),
    })
}

/// Minimum pragma-reason length: long enough to force a real sentence
/// fragment, short enough to never be the obstacle.
const MIN_REASON: usize = 8;

/// Scans one file's source text under the given path-derived context.
///
/// This is the single entry point both the workspace scan and the
/// fixture self-test use, so the two can never drift apart.
pub fn scan_source(text: &str, ctx: &FileContext) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut lex = LexState::default();

    // Pre-split every line once; rules then look at (code, comment)
    // pairs plus a little vertical context (SAFETY search, pragmas).
    let lines: Vec<&str> = text.lines().collect();
    let mut split: Vec<SplitLine> = Vec::with_capacity(lines.len());
    for line in &lines {
        split.push(lex.split(line));
    }

    // `#[cfg(test)]` module tracking: after the attribute, the next
    // brace-opening item starts a region that ends when the brace depth
    // returns to its entry value.
    let mut brace_depth: i64 = 0;
    let mut pending_cfg_test = false;
    let mut test_region_floor: Option<i64> = None;

    // A pragma on a comment-only line suppresses the next code line.
    let mut carried_allows: Vec<Rule> = Vec::new();

    for (idx, sl) in split.iter().enumerate() {
        let line_no = idx + 1;
        let code = sl.code.as_str();
        let code_trim = code.trim();
        let in_test_module = test_region_floor.is_some();

        // --- pragma handling -------------------------------------------------
        let mut allows: Vec<Rule> = std::mem::take(&mut carried_allows);
        if let Some(pragma) = parse_pragma(&sl.comment) {
            let mut valid = true;
            for r in &pragma.rules {
                match r {
                    Ok(rule) => allows.push(*rule),
                    Err(name) => {
                        valid = false;
                        diags.push(Diagnostic {
                            file: ctx.path.clone(),
                            line: line_no,
                            rule: Rule::BadPragma,
                            message: format!(
                                "pragma names unknown rule `{name}` — known rules: {}",
                                ALL_RULES
                                    .iter()
                                    .map(|r| r.name())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                            snippet: lines[idx].trim().to_string(),
                        });
                    }
                }
            }
            if pragma.reason_len < MIN_REASON {
                valid = false;
                diags.push(Diagnostic {
                    file: ctx.path.clone(),
                    line: line_no,
                    rule: Rule::BadPragma,
                    message: "pragma carries no reason — write `// lint:allow(rule) why this \
                              is sound`"
                        .to_string(),
                    snippet: lines[idx].trim().to_string(),
                });
            }
            if !valid {
                allows.clear();
            } else if code_trim.is_empty() {
                // Comment-only pragma line: applies to the next line.
                carried_allows = allows;
                allows = Vec::new();
            }
        }

        // --- cfg(test) region tracking --------------------------------------
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            pending_cfg_test = true;
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if pending_cfg_test && opens > 0 {
            test_region_floor = Some(brace_depth);
            pending_cfg_test = false;
        } else if pending_cfg_test && code.contains(';') {
            // `#[cfg(test)] mod x;` — out-of-line; nothing to skip here.
            pending_cfg_test = false;
        }
        brace_depth += opens - closes;
        if let Some(floor) = test_region_floor {
            if brace_depth <= floor && closes > 0 {
                test_region_floor = None;
            }
        }

        // --- rule checks -----------------------------------------------------
        let mut hits: Vec<(Rule, String)> = Vec::new();

        if ctx.crate_name != "par"
            && (has_token(code, "thread::spawn")
                || has_token(code, "thread::scope")
                || has_token(code, "thread::Builder")
                || has_token(code, "rayon"))
        {
            hits.push((
                Rule::ThreadDiscipline,
                "threading outside crates/par — route this through distscroll_par so the \
                 global --jobs token budget holds"
                    .to_string(),
            ));
        }

        let lib_line = ctx.kind == FileKind::Lib && !in_test_module;

        if lib_line && ctx.is_deterministic_crate() {
            if has_token(code, "Instant::now") || has_token(code, "SystemTime::now") {
                hits.push((
                    Rule::WallClock,
                    "wall-clock read in a deterministic eval path — results must be a pure \
                     function of the seed"
                        .to_string(),
                ));
            }
            if has_token(code, "thread_rng")
                || has_token(code, "rand::random")
                || has_token(code, "from_entropy")
                || has_token(code, "OsRng")
            {
                hits.push((
                    Rule::AmbientRng,
                    "ambient randomness in a deterministic eval path — derive every RNG from \
                     the experiment seed"
                        .to_string(),
                ));
            }
        }

        if lib_line && (has_token(code, "HashMap") || has_token(code, "HashSet")) {
            hits.push((
                Rule::UnorderedIter,
                "unordered hash collection in report-feeding library code — iteration order \
                 is nondeterministic; use BTreeMap/BTreeSet or sort before iterating"
                    .to_string(),
            ));
        }

        if has_token(code, "unsafe") {
            if !ctx.unsafe_allowlisted() {
                hits.push((
                    Rule::UnsafeAudit,
                    format!(
                        "`unsafe` outside the audited allowlist ({}) — extend the allowlist \
                         only with a reviewed justification",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                ));
            } else if !safety_comment_nearby(&split, lines.as_slice(), idx) {
                hits.push((
                    Rule::UnsafeAudit,
                    "`unsafe` without a `// SAFETY:` comment — state the invariant that makes \
                     this sound"
                        .to_string(),
                ));
            }
        }

        if ctx.crate_name != "core"
            && (has_token(code, "drain_events") || has_token(code, "drain_telemetry"))
        {
            hits.push((
                Rule::EventDrain,
                "allocate-per-poll drain outside crates/core — visit events with \
                 poll_events/poll_telemetry, or reuse a scratch buffer via \
                 drain_events_into/drain_telemetry_into"
                    .to_string(),
            ));
        }

        if ctx.crate_name != "hw" && has_token(code, "from_raw") {
            hits.push((
                Rule::RawSeq,
                "raw sequence-number construction outside crates/hw — take sequence numbers \
                 from decode_data/decode_ack so serial-number arithmetic stays in the audited \
                 arq module"
                    .to_string(),
            ));
        }

        if ctx.crate_name == "ingest"
            && ctx.path != "crates/ingest/src/shard.rs"
            && (has_token(code, "StreamDecoder::new")
                || has_token(code, "StreamDecoder::with_arq")
                || has_token(code, "StreamDecoder::with_arq_resync")
                || has_token(code, "StreamDecoder::default"))
        {
            hits.push((
                Rule::RawDecoder,
                "raw StreamDecoder construction outside the shard registry — sessions in \
                 crates/ingest are opened by crates/ingest/src/shard.rs only, so every \
                 decoder's counters land in exactly one shard's books"
                    .to_string(),
            ));
        }

        if ctx.crate_name != "hw"
            && !in_test_module
            && (has_token(code, "clock.advance")
                || has_token(code, "clock.advance_to")
                || has_token(code, "SimClock::advance")
                || has_token(code, "board.step")
                || has_token(code, "board.step_recount"))
        {
            hits.push((
                Rule::FixedTick,
                "manual tick stepping outside the scheduler crate — register a deadline with \
                 the event scheduler (distscroll_hw::sched) and drive time through the device \
                 dispatch (tick/run_until), so the jump-to-deadline discipline holds"
                    .to_string(),
            ));
        }

        if lib_line {
            for pat in [
                ".unwrap()",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
                "unimplemented!(",
            ] {
                if code.contains(pat) {
                    hits.push((
                        Rule::PanicHygiene,
                        format!(
                            "`{}` in library code — return Result (the summarize() style) or \
                             justify the invariant with a pragma",
                            pat.trim_matches(|c| c == '.' || c == '(')
                        ),
                    ));
                    break;
                }
            }
        }

        for (rule, message) in hits {
            if allows.contains(&rule) {
                continue;
            }
            diags.push(Diagnostic {
                file: ctx.path.clone(),
                line: line_no,
                rule,
                message,
                snippet: lines[idx].trim().to_string(),
            });
        }
    }
    diags
}

/// Is there a `SAFETY:` comment on this line or in the contiguous
/// comment/attribute block immediately above it?
fn safety_comment_nearby(split: &[SplitLine], lines: &[&str], idx: usize) -> bool {
    if split[idx].comment.contains("SAFETY:") {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let code_trim = split[j].code.trim();
        let is_attr = code_trim.starts_with("#[") || code_trim.starts_with("#![");
        if !(code_trim.is_empty() || is_attr) {
            // Hit real code: the comment block above the unsafe ends.
            return false;
        }
        if split[j].comment.contains("SAFETY:") {
            return true;
        }
        // Allow the search to continue through attributes and comment
        // lines, but not past a blank separator *with no comment*.
        if code_trim.is_empty() && split[j].comment.is_empty() && lines[j].trim().is_empty() {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(path: &str) -> FileContext {
        FileContext::classify(path)
    }

    fn rules_at(text: &str, path: &str) -> Vec<(Rule, usize)> {
        scan_source(text, &lib_ctx(path))
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn classify_kinds() {
        assert_eq!(
            FileContext::classify("crates/eval/src/report.rs").kind,
            FileKind::Lib
        );
        assert_eq!(
            FileContext::classify("crates/eval/src/main.rs").kind,
            FileKind::Bin
        );
        assert_eq!(
            FileContext::classify("crates/par/tests/nesting.rs").kind,
            FileKind::TestLike
        );
        assert_eq!(FileContext::classify("src/lib.rs").crate_name, "distscroll");
    }

    #[test]
    fn thread_spawn_flagged_outside_par_only() {
        let text = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            rules_at(text, "crates/eval/src/runner.rs"),
            vec![(Rule::ThreadDiscipline, 1)]
        );
        assert!(rules_at(text, "crates/par/src/pool.rs")
            .iter()
            .all(|(r, _)| *r != Rule::ThreadDiscipline));
    }

    #[test]
    fn wall_clock_scoped_to_deterministic_crates_lib_code() {
        let text = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_at(text, "crates/eval/src/stats.rs"),
            vec![(Rule::WallClock, 1)]
        );
        assert!(rules_at(text, "crates/eval/src/main.rs").is_empty());
        assert!(rules_at(text, "crates/sensors/src/noise.rs").is_empty());
    }

    #[test]
    fn tokens_in_strings_and_comments_do_not_fire() {
        let text = concat!(
            "// mentions thread::spawn and HashMap in prose\n",
            "fn f() -> &'static str { \"Instant::now() .unwrap() HashMap\" }\n",
        );
        assert!(rules_at(text, "crates/eval/src/stats.rs").is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_exempt() {
        let text = concat!(
            "pub fn ok() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { Some(1).unwrap(); }\n",
            "}\n",
        );
        assert!(rules_at(text, "crates/core/src/menu.rs").is_empty());
    }

    #[test]
    fn unwrap_after_cfg_test_module_closes_is_flagged_again() {
        let text = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { Some(1).unwrap(); }\n",
            "}\n",
            "pub fn bad() { Some(1).unwrap(); }\n",
        );
        assert_eq!(
            rules_at(text, "crates/core/src/menu.rs"),
            vec![(Rule::PanicHygiene, 5)]
        );
    }

    #[test]
    fn pragma_suppresses_same_line_and_next_line() {
        let trailing =
            "pub fn f() { Some(1).unwrap(); } // lint:allow(panic-hygiene) startup invariant\n";
        assert!(rules_at(trailing, "crates/core/src/menu.rs").is_empty());
        let preceding = concat!(
            "// lint:allow(panic-hygiene) startup invariant holds\n",
            "pub fn f() { Some(1).unwrap(); }\n",
        );
        assert!(rules_at(preceding, "crates/core/src/menu.rs").is_empty());
    }

    #[test]
    fn pragma_does_not_leak_past_its_target_line() {
        let text = concat!(
            "// lint:allow(panic-hygiene) only the next line\n",
            "pub fn f() { Some(1).unwrap(); }\n",
            "pub fn g() { Some(1).unwrap(); }\n",
        );
        assert_eq!(
            rules_at(text, "crates/core/src/menu.rs"),
            vec![(Rule::PanicHygiene, 3)]
        );
    }

    #[test]
    fn pragma_without_reason_is_bad_and_does_not_suppress() {
        let text = concat!(
            "// lint:allow(panic-hygiene)\n",
            "pub fn f() { Some(1).unwrap(); }\n",
        );
        assert_eq!(
            rules_at(text, "crates/core/src/menu.rs"),
            vec![(Rule::BadPragma, 1), (Rule::PanicHygiene, 2)]
        );
    }

    #[test]
    fn unsafe_needs_allowlist_and_safety_comment() {
        let outside = "pub fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        assert_eq!(
            rules_at(outside, "crates/core/src/menu.rs"),
            vec![(Rule::UnsafeAudit, 1)]
        );
        let unaudited = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(
            rules_at(unaudited, "crates/par/src/pool.rs"),
            vec![(Rule::UnsafeAudit, 1)]
        );
        let audited = concat!(
            "// SAFETY: caller guarantees p is valid for reads\n",
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        assert!(rules_at(audited, "crates/par/src/pool.rs").is_empty());
    }

    #[test]
    fn attribute_between_safety_comment_and_unsafe_is_fine() {
        let text = concat!(
            "// SAFETY: justified above the attribute\n",
            "#[allow(unsafe_code)]\n",
            "unsafe impl Send for X {}\n",
        );
        assert!(rules_at(text, "crates/par/src/pool.rs").is_empty());
    }

    #[test]
    fn forbid_unsafe_code_attribute_does_not_fire() {
        let text = "#![forbid(unsafe_code)]\n";
        assert!(rules_at(text, "crates/core/src/lib.rs").is_empty());
    }

    #[test]
    fn event_drain_flagged_outside_core_only() {
        let text = "fn f(dev: &mut D) { let _ = dev.drain_events(); }\n";
        assert_eq!(
            rules_at(text, "crates/eval/src/experiments/fig4.rs"),
            vec![(Rule::EventDrain, 1)]
        );
        assert_eq!(
            rules_at(text, "examples/quickstart.rs"),
            vec![(Rule::EventDrain, 1)]
        );
        assert!(rules_at(text, "crates/core/src/device.rs").is_empty());
        let telemetry = "fn f(dev: &mut D) { for t in dev.drain_telemetry() {} }\n";
        assert_eq!(
            rules_at(telemetry, "crates/host/src/session.rs"),
            vec![(Rule::EventDrain, 1)]
        );
    }

    #[test]
    fn raw_seq_flagged_outside_hw_only() {
        let text = "fn f() -> Seq16 { Seq16::from_raw(7) }\n";
        assert_eq!(
            rules_at(text, "crates/host/src/telemetry.rs"),
            vec![(Rule::RawSeq, 1)]
        );
        assert_eq!(
            rules_at(text, "crates/eval/src/experiments/arq.rs"),
            vec![(Rule::RawSeq, 1)]
        );
        assert!(rules_at(text, "crates/hw/src/arq.rs").is_empty());
        let decoded = "fn f(p: &[u8]) { let _ = decode_data(p); }\n";
        assert!(rules_at(decoded, "crates/host/src/telemetry.rs").is_empty());
    }

    #[test]
    fn raw_decoder_flagged_in_ingest_outside_the_shard_registry() {
        let text = "fn f() -> StreamDecoder { StreamDecoder::with_arq_resync() }\n";
        assert_eq!(
            rules_at(text, "crates/ingest/src/service.rs"),
            vec![(Rule::RawDecoder, 1)]
        );
        assert_eq!(
            rules_at(text, "crates/ingest/tests/backpressure.rs"),
            vec![(Rule::RawDecoder, 1)]
        );
        // The shard registry is the sanctioned construction site, and
        // other crates (the single-device host path) are out of scope.
        assert!(rules_at(text, "crates/ingest/src/shard.rs").is_empty());
        assert!(rules_at(text, "crates/host/src/session.rs").is_empty());
        let plain = "fn f() -> StreamDecoder { StreamDecoder::new() }\n";
        assert_eq!(
            rules_at(plain, "crates/ingest/src/loadgen.rs"),
            vec![(Rule::RawDecoder, 1)]
        );
        let pragmad = concat!(
            "// lint:allow(raw-decoder) capture-time ground truth, outside any shard's books\n",
            "fn f() -> StreamDecoder { StreamDecoder::with_arq() }\n",
        );
        assert!(rules_at(pragmad, "crates/ingest/src/loadgen.rs").is_empty());
    }

    #[test]
    fn fixed_tick_flagged_outside_hw_and_tests() {
        let text = "fn f(b: &mut Board, d: SimDuration) { board.step(d); }\n";
        assert_eq!(
            rules_at(text, "crates/eval/src/runner.rs"),
            vec![(Rule::FixedTick, 1)]
        );
        assert_eq!(
            rules_at(text, "examples/quickstart.rs"),
            vec![(Rule::FixedTick, 1)]
        );
        assert!(rules_at(text, "crates/hw/src/board.rs").is_empty());
        let advance = "fn f(c: &mut SimClock, d: SimDuration) { clock.advance(d); }\n";
        assert_eq!(
            rules_at(advance, "crates/core/src/device.rs"),
            vec![(Rule::FixedTick, 1)]
        );
        let in_test = concat!(
            "pub fn ok() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(b: &mut Board, d: SimDuration) { board.step(d); }\n",
            "}\n",
        );
        assert!(rules_at(in_test, "crates/core/src/firmware.rs").is_empty());
        let pragmad = concat!(
            "// lint:allow(fixed-tick) the event-core dispatch is the sanctioned stepping site\n",
            "fn f(b: &mut Board, d: SimDuration) { board.step(d); }\n",
        );
        assert!(rules_at(pragmad, "crates/core/src/device.rs").is_empty());
    }

    #[test]
    fn event_drain_into_scratch_forms_are_fine() {
        let text = concat!(
            "fn f(dev: &mut D, buf: &mut Vec<E>) {\n",
            "    dev.drain_events_into(buf);\n",
            "    dev.drain_telemetry_into(buf);\n",
            "    dev.poll_events(&mut |_e| {});\n",
            "}\n",
        );
        assert!(rules_at(text, "crates/eval/src/experiments/fig4.rs").is_empty());
    }

    #[test]
    fn hash_collections_flagged_in_lib_code() {
        let text = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_at(text, "crates/host/src/telemetry.rs"),
            vec![(Rule::UnorderedIter, 1)]
        );
        assert!(rules_at(text, "crates/host/tests/t.rs").is_empty());
    }

    #[test]
    fn multiline_raw_strings_are_blanked() {
        let text = concat!(
            "pub fn f() -> &'static str {\n",
            "    r#\"first line .unwrap()\n",
            "    Instant::now() still inside the raw string\n",
            "    \"#\n",
            "}\n",
        );
        assert!(rules_at(text, "crates/eval/src/report.rs").is_empty());
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_derail_the_lexer() {
        let text = concat!(
            "pub fn f(c: char) -> bool { c == '\"' }\n",
            "pub fn g<'a>(s: &'a str) -> &'a str { s }\n",
            "pub fn bad() { Option::<u8>::None.unwrap(); }\n",
        );
        assert_eq!(
            rules_at(text, "crates/core/src/menu.rs"),
            vec![(Rule::PanicHygiene, 3)]
        );
    }
}
