//! The rule set and the per-file scanner, running over the semantic
//! parse from [`crate::parse`].
//!
//! PR 3's scanner was a line/token matcher; it is still the backbone
//! (token rules are cheap and auditable), but the scanner now consumes
//! a [`ParsedFile`] — items, `#[cfg(test)]` regions, and `let`-binding
//! lifetimes — so three rules can reason about *flow* across lines:
//! a lock guard live across a `par_map` fan-out, serial-number values
//! hit with raw integer arithmetic, and `lint:allow` pragmas that no
//! longer suppress anything.

use crate::parse::{parse_file, BindingClass, ParsedFile, SplitLine};
use crate::Diagnostic;

/// Version of the rule set, shared by the scan cache (a bumped version
/// invalidates every cached entry) and the SARIF tool descriptor.
/// Bump whenever a rule's behavior, scope, or message changes.
pub const RULES_VERSION: u32 = 3;

/// Every lint rule the scanner knows, in stable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Threading primitives outside the sanctioned executor crate.
    ThreadDiscipline,
    /// Wall-clock reads in deterministic evaluation paths.
    WallClock,
    /// Ambient (OS-seeded) randomness in deterministic evaluation paths.
    AmbientRng,
    /// Unordered hash collections in report-feeding library code.
    UnorderedIter,
    /// `unsafe` outside the allowlisted module or without a SAFETY comment.
    UnsafeAudit,
    /// Panicking calls in library code outside tests.
    PanicHygiene,
    /// Legacy allocate-per-poll event/telemetry drains outside `crates/core`.
    EventDrain,
    /// Raw ARQ sequence-number construction outside `crates/hw`.
    RawSeq,
    /// Raw `StreamDecoder` construction inside `crates/ingest` outside
    /// the shard registry.
    RawDecoder,
    /// Manual clock stepping / fixed-tick driving outside the scheduler
    /// crate and `#[cfg(test)]` regions.
    FixedTick,
    /// A mutex guard binding live across a `par_map`/`par_map_ctx`
    /// fan-out — deadlock risk under the global token budget.
    GuardAcrossFanout,
    /// Raw `+`/`-`/`<`/`>` arithmetic on wrapping serial numbers
    /// (`Seq16`, 16-bit stamps) outside the RFC 1982 helpers.
    SerialArith,
    /// Raw distance-filter construction (`MedianFilter`/`Ema`/`SlewGate`)
    /// outside `crates/recognizer` and `crates/sensors`.
    RawFilter,
    /// A valid `lint:allow` pragma that suppresses zero diagnostics.
    UnusedPragma,
    /// A `lint:allow` pragma that is unusable as written.
    BadPragma,
}

/// All rules, in the order they are documented and reported.
pub const ALL_RULES: &[Rule] = &[
    Rule::ThreadDiscipline,
    Rule::WallClock,
    Rule::AmbientRng,
    Rule::UnorderedIter,
    Rule::UnsafeAudit,
    Rule::PanicHygiene,
    Rule::EventDrain,
    Rule::RawSeq,
    Rule::RawDecoder,
    Rule::FixedTick,
    Rule::GuardAcrossFanout,
    Rule::SerialArith,
    Rule::RawFilter,
    Rule::UnusedPragma,
    Rule::BadPragma,
];

impl Rule {
    /// The stable kebab-case id used in pragmas, JSON and fixtures.
    pub fn name(self) -> &'static str {
        match self {
            Rule::ThreadDiscipline => "thread-discipline",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::UnorderedIter => "unordered-iter",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::EventDrain => "event-drain",
            Rule::RawSeq => "raw-seq",
            Rule::RawDecoder => "raw-decoder",
            Rule::FixedTick => "fixed-tick",
            Rule::GuardAcrossFanout => "guard-across-fanout",
            Rule::SerialArith => "serial-arith",
            Rule::RawFilter => "raw-filter",
            Rule::UnusedPragma => "unused-pragma",
            Rule::BadPragma => "bad-pragma",
        }
    }

    /// Resolves a pragma/fixture rule id; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// One-line description, shown by `xtask lint --rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::ThreadDiscipline => {
                "thread::spawn / thread::scope / thread::Builder / rayon outside crates/par — \
                 all parallelism must flow through the shared pool's token budget"
            }
            Rule::WallClock => {
                "Instant::now / SystemTime::now in core/eval/baselines/host library code — \
                 wall-clock reads make eval output machine-dependent"
            }
            Rule::AmbientRng => {
                "thread_rng / rand::random / from_entropy / OsRng in core/eval/baselines/host \
                 library code — all stochasticity must flow from the experiment seed"
            }
            Rule::UnorderedIter => {
                "HashMap / HashSet in first-party library code — iteration order feeds reports; \
                 use BTreeMap / BTreeSet or a sorted Vec"
            }
            Rule::UnsafeAudit => {
                "unsafe outside the audited allowlist (par::pool, core's counting-allocator \
                 test), or without a `// SAFETY:` comment justifying it"
            }
            Rule::PanicHygiene => {
                "unwrap / expect / panic! / unreachable! / todo! / unimplemented! in library \
                 code outside tests — fail through Result like summarize()"
            }
            Rule::EventDrain => {
                "drain_events / drain_telemetry outside crates/core — the owned-Vec poll \
                 allocates per tick; visit with poll_events/poll_telemetry or reuse a \
                 scratch buffer via the drain_*_into forms"
            }
            Rule::RawSeq => {
                "Seq16::from_raw outside crates/hw — device and host code receive ARQ \
                 sequence numbers from decode_data/decode_ack and never construct their own, \
                 so serial-number comparisons stay in one audited module"
            }
            Rule::RawDecoder => {
                "StreamDecoder construction in crates/ingest outside src/shard.rs — every \
                 fleet session lives in exactly one shard's books; ask the shard registry \
                 for a session instead of opening a decoder at the call site"
            }
            Rule::FixedTick => {
                "SimClock::advance / board.step / manual tick stepping outside crates/hw and \
                 #[cfg(test)] regions — register a deadline with the event scheduler \
                 (distscroll_hw::sched) and let the device dispatch advance time"
            }
            Rule::GuardAcrossFanout => {
                "a .lock() / lock_unpoisoned() guard binding still live at a par_map / \
                 par_map_ctx call outside crates/par — workers blocking on the guard while \
                 the caller blocks on the pool deadlocks under the global token budget; \
                 drop the guard first or lock inside the worker closure"
            }
            Rule::SerialArith => {
                "raw + - < > arithmetic on a wrapping serial number (Seq16, 16-bit stamp) \
                 outside crates/hw — a backwards jump under 32768 is reordering, not a wrap \
                 (the PR 5 SessionLog bug); compare through wrapping_sub/distance_from/\
                 newer_or_equal, the RFC 1982 helpers"
            }
            Rule::RawFilter => {
                "MedianFilter::new / Ema::new / SlewGate::new outside crates/recognizer and \
                 crates/sensors — the recognizer crate owns the distance-processing stages \
                 and their cycle/RAM budgets; build a ClassicChain or Segmented recognizer \
                 instead of wiring stages by hand"
            }
            Rule::UnusedPragma => {
                "a lint:allow pragma that suppresses zero diagnostics — stale suppressions \
                 rot silently; delete the pragma or re-attach it to the violation it excuses"
            }
            Rule::BadPragma => "a lint:allow pragma naming an unknown rule or carrying no reason",
        }
    }
}

/// What kind of source a file is, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code — the strictest scope.
    Lib,
    /// A binary entry point (`main.rs`, `src/bin/…`, `build.rs`).
    Bin,
    /// Integration tests, benches or examples.
    TestLike,
}

/// Path-derived facts the rules scope themselves by.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate directory name under `crates/`, or `"distscroll"` for the
    /// root package.
    pub crate_name: String,
    /// Library / binary / test-like classification.
    pub kind: FileKind,
}

/// Crates whose library code must be free of wall-clock and ambient
/// randomness: everything on the path from a seed to a report.
const DETERMINISTIC_CRATES: &[&str] = &["core", "eval", "baselines", "host", "ingest"];

/// The only modules allowed to contain `unsafe` (and every block there
/// must carry a SAFETY comment): the worker pool, and the counting
/// allocators backing the two zero-allocation regression tests.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/par/src/pool.rs",
    "crates/core/tests/zero_alloc.rs",
    "crates/host/tests/zero_alloc_decode.rs",
];

impl FileContext {
    /// Classifies a workspace-relative path (`/`-separated).
    pub fn classify(path: &str) -> FileContext {
        let parts: Vec<&str> = path.split('/').collect();
        let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
            parts[1].to_string()
        } else {
            "distscroll".to_string()
        };
        let file_name = parts.last().copied().unwrap_or_default();
        let test_like = parts
            .iter()
            .any(|p| matches!(*p, "tests" | "benches" | "examples"));
        let kind = if test_like {
            FileKind::TestLike
        } else if file_name == "main.rs" || file_name == "build.rs" || parts.contains(&"bin") {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        FileContext {
            path: path.to_string(),
            crate_name,
            kind,
        }
    }

    fn is_deterministic_crate(&self) -> bool {
        DETERMINISTIC_CRATES.contains(&self.crate_name.as_str())
    }

    fn unsafe_allowlisted(&self) -> bool {
        UNSAFE_ALLOWLIST.contains(&self.path.as_str())
    }
}

/// Is `text[pos..pos+len]` a standalone token (not part of a larger
/// identifier)?
fn word_bounded(text: &str, pos: usize, len: usize) -> bool {
    let is_word = |c: char| c.is_alphanumeric() || c == '_';
    let before = text[..pos].chars().next_back();
    let after = text[pos + len..].chars().next();
    !before.is_some_and(is_word) && !after.is_some_and(is_word)
}

/// Does `code` contain `pat` as a word-bounded token?
fn has_token(code: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find(pat) {
        let pos = from + rel;
        if word_bounded(code, pos, pat.len()) {
            return true;
        }
        from = pos + pat.len();
    }
    false
}

/// A parsed allow pragma: the named rules plus the reason's length.
struct Pragma {
    rules: Vec<Result<Rule, String>>,
    reason_len: usize,
}

/// Extracts a pragma from a line's comment text, if any.
fn parse_pragma(comment: &str) -> Option<Pragma> {
    let start = comment.find("lint:allow(")?;
    let rest = &comment[start + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rules = rest[..close]
        .split(',')
        .map(|name| {
            let name = name.trim();
            Rule::from_name(name).ok_or_else(|| name.to_string())
        })
        .collect();
    let reason = rest[close + 1..].trim();
    Some(Pragma {
        rules,
        reason_len: reason.len(),
    })
}

/// Minimum pragma-reason length: long enough to force a real sentence
/// fragment, short enough to never be the obstacle.
const MIN_REASON: usize = 8;

/// One `(rule, line)` grant from a valid pragma, with usage tracking
/// for the `unused-pragma` rule.
struct PragmaGrant {
    rule: Rule,
    line: usize,
    used: bool,
}

/// Scans one file's source text under the given path-derived context.
///
/// Convenience wrapper over [`scan_parsed`] for callers that have no
/// use for the parse (fixtures, unit tests).
pub fn scan_source(text: &str, ctx: &FileContext) -> Vec<Diagnostic> {
    scan_parsed(&parse_file(text), ctx)
}

/// Scans an already-parsed file. This is the single rule engine both
/// the workspace scan and the fixture self-test use, so the two can
/// never drift apart.
pub fn scan_parsed(parsed: &ParsedFile, ctx: &FileContext) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let split = &parsed.lines;
    let raw = &parsed.raw;

    // Valid pragma grants, for suppression and the unused check.
    let mut grants: Vec<PragmaGrant> = Vec::new();
    // Grant indices carried from a comment-only pragma line to the
    // next line.
    let mut carried_grants: Vec<usize> = Vec::new();

    for (idx, sl) in split.iter().enumerate() {
        let line_no = idx + 1;
        let code = sl.code.as_str();
        let code_trim = code.trim();
        let in_test_module = parsed.in_test.get(idx).copied().unwrap_or(false);
        let snippet = raw
            .get(idx)
            .map(|l| l.trim().to_string())
            .unwrap_or_default();

        // --- pragma handling -------------------------------------------------
        // Doc comments (`///`, `//!`) are prose: a pragma *mentioned*
        // there (e.g. this crate's own usage example) is documentation,
        // not a suppression, and must not trip `unused-pragma`.
        let is_doc_comment = sl.comment.starts_with('/') || sl.comment.starts_with('!');
        let mut allows: Vec<usize> = std::mem::take(&mut carried_grants);
        if let Some(pragma) = parse_pragma(&sl.comment).filter(|_| !is_doc_comment) {
            let mut valid = true;
            let mut new_grants: Vec<usize> = Vec::new();
            for r in &pragma.rules {
                match r {
                    Ok(rule) => {
                        grants.push(PragmaGrant {
                            rule: *rule,
                            line: line_no,
                            used: false,
                        });
                        new_grants.push(grants.len() - 1);
                    }
                    Err(name) => {
                        valid = false;
                        diags.push(Diagnostic {
                            file: ctx.path.clone(),
                            line: line_no,
                            rule: Rule::BadPragma,
                            message: format!(
                                "pragma names unknown rule `{name}` — known rules: {}",
                                ALL_RULES
                                    .iter()
                                    .map(|r| r.name())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                            snippet: snippet.clone(),
                        });
                    }
                }
            }
            if pragma.reason_len < MIN_REASON {
                valid = false;
                diags.push(Diagnostic {
                    file: ctx.path.clone(),
                    line: line_no,
                    rule: Rule::BadPragma,
                    message: "pragma carries no reason — write `// lint:allow(rule) why this \
                              is sound`"
                        .to_string(),
                    snippet: snippet.clone(),
                });
            }
            if !valid {
                // An invalid pragma suppresses nothing; withdraw its
                // grants so the unused check skips them too.
                for &g in &new_grants {
                    grants[g].used = true;
                }
            } else if code_trim.is_empty() {
                // Comment-only pragma line: applies to the next line.
                carried_grants = allows.clone();
                carried_grants.extend(new_grants);
                allows = Vec::new();
            } else {
                allows.extend(new_grants);
            }
        }

        // --- token rules -----------------------------------------------------
        let mut hits: Vec<(Rule, String)> = Vec::new();

        if ctx.crate_name != "par"
            && (has_token(code, "thread::spawn")
                || has_token(code, "thread::scope")
                || has_token(code, "thread::Builder")
                || has_token(code, "rayon"))
        {
            hits.push((
                Rule::ThreadDiscipline,
                "threading outside crates/par — route this through distscroll_par so the \
                 global --jobs token budget holds"
                    .to_string(),
            ));
        }

        let lib_line = ctx.kind == FileKind::Lib && !in_test_module;

        if lib_line && ctx.is_deterministic_crate() {
            if has_token(code, "Instant::now") || has_token(code, "SystemTime::now") {
                hits.push((
                    Rule::WallClock,
                    "wall-clock read in a deterministic eval path — results must be a pure \
                     function of the seed"
                        .to_string(),
                ));
            }
            if has_token(code, "thread_rng")
                || has_token(code, "rand::random")
                || has_token(code, "from_entropy")
                || has_token(code, "OsRng")
            {
                hits.push((
                    Rule::AmbientRng,
                    "ambient randomness in a deterministic eval path — derive every RNG from \
                     the experiment seed"
                        .to_string(),
                ));
            }
        }

        if lib_line && (has_token(code, "HashMap") || has_token(code, "HashSet")) {
            hits.push((
                Rule::UnorderedIter,
                "unordered hash collection in report-feeding library code — iteration order \
                 is nondeterministic; use BTreeMap/BTreeSet or sort before iterating"
                    .to_string(),
            ));
        }

        if has_token(code, "unsafe") {
            if !ctx.unsafe_allowlisted() {
                hits.push((
                    Rule::UnsafeAudit,
                    format!(
                        "`unsafe` outside the audited allowlist ({}) — extend the allowlist \
                         only with a reviewed justification",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                ));
            } else if !safety_comment_nearby(split, raw, idx) {
                hits.push((
                    Rule::UnsafeAudit,
                    "`unsafe` without a `// SAFETY:` comment — state the invariant that makes \
                     this sound"
                        .to_string(),
                ));
            }
        }

        if ctx.crate_name != "core"
            && (has_token(code, "drain_events") || has_token(code, "drain_telemetry"))
        {
            hits.push((
                Rule::EventDrain,
                "allocate-per-poll drain outside crates/core — visit events with \
                 poll_events/poll_telemetry, or reuse a scratch buffer via \
                 drain_events_into/drain_telemetry_into"
                    .to_string(),
            ));
        }

        if ctx.crate_name != "hw" && has_token(code, "from_raw") {
            hits.push((
                Rule::RawSeq,
                "raw sequence-number construction outside crates/hw — take sequence numbers \
                 from decode_data/decode_ack so serial-number arithmetic stays in the audited \
                 arq module"
                    .to_string(),
            ));
        }

        if ctx.crate_name == "ingest"
            && ctx.path != "crates/ingest/src/shard.rs"
            && (has_token(code, "StreamDecoder::new")
                || has_token(code, "StreamDecoder::with_arq")
                || has_token(code, "StreamDecoder::with_arq_resync")
                || has_token(code, "StreamDecoder::default"))
        {
            hits.push((
                Rule::RawDecoder,
                "raw StreamDecoder construction outside the shard registry — sessions in \
                 crates/ingest are opened by crates/ingest/src/shard.rs only, so every \
                 decoder's counters land in exactly one shard's books"
                    .to_string(),
            ));
        }

        if ctx.crate_name != "recognizer"
            && ctx.crate_name != "sensors"
            && (has_token(code, "MedianFilter::new")
                || has_token(code, "Ema::new")
                || has_token(code, "SlewGate::new"))
        {
            hits.push((
                Rule::RawFilter,
                "raw distance-filter construction outside crates/recognizer — the recognizer \
                 crate owns the stage chain and its cycle/RAM budgets; build a ClassicChain \
                 or Segmented recognizer instead of wiring MedianFilter/Ema/SlewGate by hand"
                    .to_string(),
            ));
        }

        if ctx.crate_name != "hw"
            && !in_test_module
            && (has_token(code, "clock.advance")
                || has_token(code, "clock.advance_to")
                || has_token(code, "SimClock::advance")
                || has_token(code, "board.step")
                || has_token(code, "board.step_recount"))
        {
            hits.push((
                Rule::FixedTick,
                "manual tick stepping outside the scheduler crate — register a deadline with \
                 the event scheduler (distscroll_hw::sched) and drive time through the device \
                 dispatch (tick/run_until), so the jump-to-deadline discipline holds"
                    .to_string(),
            ));
        }

        if lib_line {
            for pat in [
                ".unwrap()",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
                "unimplemented!(",
            ] {
                if code.contains(pat) {
                    hits.push((
                        Rule::PanicHygiene,
                        format!(
                            "`{}` in library code — return Result (the summarize() style) or \
                             justify the invariant with a pragma",
                            pat.trim_matches(|c| c == '.' || c == '(')
                        ),
                    ));
                    break;
                }
            }
        }

        // --- flow-aware rules (binding lifetimes from the parser) ------------

        if ctx.crate_name != "par" && (has_token(code, "par_map") || has_token(code, "par_map_ctx"))
        {
            let live_guards: Vec<&crate::parse::Binding> = parsed
                .bindings
                .iter()
                .filter(|b| b.class == BindingClass::Guard && b.live_across(line_no))
                .collect();
            if !live_guards.is_empty() {
                let names = live_guards
                    .iter()
                    .map(|b| format!("`{}` (line {})", b.name, b.line))
                    .collect::<Vec<_>>()
                    .join(", ");
                hits.push((
                    Rule::GuardAcrossFanout,
                    format!(
                        "lock guard {names} is live across this fan-out — pool workers \
                         contending on the guard while the caller holds a pool token can \
                         deadlock the budget; drop the guard before fanning out or move the \
                         lock inside the worker closure"
                    ),
                ));
            }
        }

        if ctx.crate_name != "hw" {
            let live_serials: Vec<&str> = parsed
                .bindings
                .iter()
                .filter(|b| {
                    b.class == BindingClass::Serial
                        && b.line <= line_no
                        && line_no <= b.live_until()
                })
                .map(|b| b.name.as_str())
                .collect();
            if let Some(operand) = serial_arith_operand(code, &live_serials) {
                hits.push((
                    Rule::SerialArith,
                    format!(
                        "raw integer arithmetic on serial-number value `{operand}` — a \
                         backwards jump under 32768 is reordering, not a wrap; use the RFC \
                         1982 helpers (wrapping_sub + horizon, distance_from, newer_or_equal) \
                         from crates/hw"
                    ),
                ));
            }
        }

        for (rule, message) in hits {
            let suppressed = allows.iter().any(|&g| grants[g].rule == rule);
            if suppressed {
                for &g in &allows {
                    if grants[g].rule == rule {
                        grants[g].used = true;
                    }
                }
                continue;
            }
            diags.push(Diagnostic {
                file: ctx.path.clone(),
                line: line_no,
                rule,
                message,
                snippet: snippet.clone(),
            });
        }
    }

    // --- unused-pragma -------------------------------------------------------
    // A grant that suppressed nothing is itself a violation, so the
    // workspace's suppressions can never rot silently. (Not itself
    // suppressible: a pragma excusing a stale pragma would defeat the
    // audit.)
    for grant in &grants {
        if !grant.used {
            diags.push(Diagnostic {
                file: ctx.path.clone(),
                line: grant.line,
                rule: Rule::UnusedPragma,
                message: format!(
                    "pragma allows `{}` but suppresses no diagnostic — delete it, or \
                     re-attach it to the violation it is meant to excuse",
                    grant.rule.name()
                ),
                snippet: raw
                    .get(grant.line - 1)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
            });
        }
    }
    diags.sort_by_key(|d| (d.line, d.rule));
    diags
}

/// Raw serial-arithmetic detection on one lexed code line: returns the
/// offending operand text if a `+ - < > <= >= += -=` operator has a
/// serial-number operand on either side.
///
/// An operand is serial when it calls `.raw()` / `.stamp()` directly
/// or names a live serial binding — unless the operand expression
/// itself routes through an RFC 1982 helper (`wrapping_sub(..) < HALF`
/// is the sanctioned idiom, not a violation).
fn serial_arith_operand(code: &str, serial_names: &[&str]) -> Option<String> {
    let toks = op_tokenize(code);
    for (i, t) in toks.iter().enumerate() {
        if !t.is_op || !RAW_OPS.contains(&t.text.as_str()) {
            continue;
        }
        // Binary context only: the previous token must close an
        // operand (identifier, `)` or `]`) — otherwise this is unary
        // minus, a generic bracket after `::<`, a pattern, etc.
        let prev_closes_operand =
            i > 0 && (!toks[i - 1].is_op || matches!(toks[i - 1].text.as_str(), ")" | "]"));
        if !prev_closes_operand {
            continue;
        }
        let left = operand_start(&toks, i).map(|s| join_toks(&toks[s..i]));
        let right = operand_end(&toks, i).map(|e| join_toks(&toks[i + 1..e]));
        for expr in [left, right].into_iter().flatten() {
            if is_serial_operand(&expr, serial_names) {
                return Some(expr);
            }
        }
    }
    None
}

/// Tokens the operator scanner works on: identifiers/numbers, and
/// punctuation with two-character operators kept whole.
struct OpTok {
    text: String,
    is_op: bool,
}

/// Two-character operators that must never be matched as the raw
/// single-character ones (`->` is not a minus, `..` is not two dots).
const TWO_CHAR: &[&str] = &[
    "->", "=>", "<<", ">>", "<=", ">=", "==", "!=", "::", "..", "+=", "-=", "&&", "||",
];

/// The raw operators the `serial-arith` rule polices. `<=`/`>=` and the
/// compound assignments are included; shifts/equality/ranges are not
/// (equality is wrap-safe, ranges and shifts are not ordering).
const RAW_OPS: &[&str] = &["+", "-", "<", ">", "<=", ">=", "+=", "-="];

/// Splits a lexed code line into identifier and punctuation tokens.
fn op_tokenize(code: &str) -> Vec<OpTok> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if crate::parse::is_ident_char(c) {
            let start = i;
            while i < chars.len() && crate::parse::is_ident_char(chars[i]) {
                i += 1;
            }
            out.push(OpTok {
                text: chars[start..i].iter().collect(),
                is_op: false,
            });
            continue;
        }
        if i + 1 < chars.len() {
            let pair: String = chars[i..i + 2].iter().collect();
            if TWO_CHAR.contains(&pair.as_str()) {
                out.push(OpTok {
                    text: pair,
                    is_op: true,
                });
                i += 2;
                continue;
            }
        }
        out.push(OpTok {
            text: c.to_string(),
            is_op: true,
        });
        i += 1;
    }
    out
}

/// Joins a token span back into expression text (no spaces — the
/// serial tests are substring/segment matches).
fn join_toks(toks: &[OpTok]) -> String {
    toks.iter().map(|t| t.text.as_str()).collect()
}

/// Walks backwards over one balanced bracket group, leaving `j` at the
/// opening token. Returns false if unbalanced.
fn skip_group_back(toks: &[OpTok], j: &mut usize) -> bool {
    let mut depth = 0i32;
    loop {
        if *j == 0 {
            return false;
        }
        *j -= 1;
        match toks[*j].text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                depth -= 1;
                if depth == 0 {
                    return true;
                }
            }
            _ => {}
        }
    }
}

/// Start index of the operand chain ending just before token `i`:
/// identifiers, `.`/`::` links and balanced call/index groups.
fn operand_start(toks: &[OpTok], i: usize) -> Option<usize> {
    let mut j = i;
    loop {
        if j == 0 {
            break;
        }
        let t = &toks[j - 1];
        if !t.is_op {
            j -= 1;
        } else if matches!(t.text.as_str(), ")" | "]") {
            let mut g = j;
            if !skip_group_back(toks, &mut g) {
                break;
            }
            j = g;
            // A call/index attaches to the identifier before it.
            if j > 0 && !toks[j - 1].is_op {
                j -= 1;
            }
        } else {
            break;
        }
        // Chain continues only through `.` / `::`.
        if j > 0 && matches!(toks[j - 1].text.as_str(), "." | "::") {
            j -= 1;
        } else {
            break;
        }
    }
    if j < i {
        Some(j)
    } else {
        None
    }
}

/// Walks forward over one balanced bracket group starting at `j`
/// (which must be `(` or `[`), leaving `j` just past the close.
fn skip_group_fwd(toks: &[OpTok], j: &mut usize) -> bool {
    let mut depth = 0i32;
    while *j < toks.len() {
        match toks[*j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    *j += 1;
                    return true;
                }
            }
            _ => {}
        }
        *j += 1;
    }
    false
}

/// Exclusive end index of the operand chain starting just after token
/// `i`: identifiers, `.`/`::` links and balanced call/index groups.
fn operand_end(toks: &[OpTok], i: usize) -> Option<usize> {
    let start = i + 1;
    let mut j = start;
    loop {
        match toks.get(j) {
            Some(t) if !t.is_op => {
                j += 1;
                while toks
                    .get(j)
                    .is_some_and(|t| matches!(t.text.as_str(), "(" | "["))
                {
                    if !skip_group_fwd(toks, &mut j) {
                        return if j > start { Some(j) } else { None };
                    }
                }
            }
            Some(t) if t.text == "(" => {
                if !skip_group_fwd(toks, &mut j) {
                    break;
                }
            }
            _ => break,
        }
        if toks
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), "." | "::"))
        {
            j += 1;
        } else {
            break;
        }
    }
    if j > start {
        Some(j)
    } else {
        None
    }
}

/// Is this operand expression a serial number under raw arithmetic?
/// Routing through an RFC 1982 helper (or a widening `from`) launders
/// the value — `stamp.wrapping_sub(front) < HALF` is the sanctioned
/// idiom, not a violation.
fn is_serial_operand(expr: &str, serial_names: &[&str]) -> bool {
    for helper in [
        "wrapping_sub",
        "wrapping_add",
        "distance_from",
        "newer_or_equal",
        "u64::from",
        "u32::from",
        "usize::from",
    ] {
        if expr.contains(helper) {
            return false;
        }
    }
    if expr.contains(".raw()") || expr.contains(".stamp()") || expr.contains(".seq()") {
        return true;
    }
    expr.split(|c: char| !crate::parse::is_ident_char(c))
        .any(|seg| !seg.is_empty() && serial_names.contains(&seg))
}

/// Is there a `SAFETY:` comment on this line or in the contiguous
/// comment/attribute block immediately above it?
fn safety_comment_nearby(split: &[SplitLine], lines: &[String], idx: usize) -> bool {
    if split[idx].comment.contains("SAFETY:") {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let code_trim = split[j].code.trim();
        let is_attr = code_trim.starts_with("#[") || code_trim.starts_with("#![");
        if !(code_trim.is_empty() || is_attr) {
            // Hit real code: the comment block above the unsafe ends.
            return false;
        }
        if split[j].comment.contains("SAFETY:") {
            return true;
        }
        // Allow the search to continue through attributes and comment
        // lines, but not past a blank separator *with no comment*.
        if code_trim.is_empty() && split[j].comment.is_empty() && lines[j].trim().is_empty() {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(path: &str) -> FileContext {
        FileContext::classify(path)
    }

    fn rules_at(text: &str, path: &str) -> Vec<(Rule, usize)> {
        scan_source(text, &lib_ctx(path))
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn classify_kinds() {
        assert_eq!(
            FileContext::classify("crates/eval/src/report.rs").kind,
            FileKind::Lib
        );
        assert_eq!(
            FileContext::classify("crates/eval/src/main.rs").kind,
            FileKind::Bin
        );
        assert_eq!(
            FileContext::classify("crates/par/tests/nesting.rs").kind,
            FileKind::TestLike
        );
        assert_eq!(FileContext::classify("src/lib.rs").crate_name, "distscroll");
    }

    #[test]
    fn thread_spawn_flagged_outside_par_only() {
        let text = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            rules_at(text, "crates/eval/src/runner.rs"),
            vec![(Rule::ThreadDiscipline, 1)]
        );
        assert!(rules_at(text, "crates/par/src/pool.rs")
            .iter()
            .all(|(r, _)| *r != Rule::ThreadDiscipline));
    }

    #[test]
    fn wall_clock_scoped_to_deterministic_crates_lib_code() {
        let text = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_at(text, "crates/eval/src/stats.rs"),
            vec![(Rule::WallClock, 1)]
        );
        assert!(rules_at(text, "crates/eval/src/main.rs").is_empty());
        assert!(rules_at(text, "crates/sensors/src/noise.rs").is_empty());
    }

    #[test]
    fn tokens_in_strings_and_comments_do_not_fire() {
        let text = concat!(
            "// mentions thread::spawn and HashMap in prose\n",
            "fn f() -> &'static str { \"Instant::now() .unwrap() HashMap\" }\n",
        );
        assert!(rules_at(text, "crates/eval/src/stats.rs").is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_exempt() {
        let text = concat!(
            "pub fn ok() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { Some(1).unwrap(); }\n",
            "}\n",
        );
        assert!(rules_at(text, "crates/core/src/menu.rs").is_empty());
    }

    #[test]
    fn unwrap_after_cfg_test_module_closes_is_flagged_again() {
        let text = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { Some(1).unwrap(); }\n",
            "}\n",
            "pub fn bad() { Some(1).unwrap(); }\n",
        );
        assert_eq!(
            rules_at(text, "crates/core/src/menu.rs"),
            vec![(Rule::PanicHygiene, 5)]
        );
    }

    #[test]
    fn pragma_suppresses_same_line_and_next_line() {
        let trailing =
            "pub fn f() { Some(1).unwrap(); } // lint:allow(panic-hygiene) startup invariant\n";
        assert!(rules_at(trailing, "crates/core/src/menu.rs").is_empty());
        let preceding = concat!(
            "// lint:allow(panic-hygiene) startup invariant holds\n",
            "pub fn f() { Some(1).unwrap(); }\n",
        );
        assert!(rules_at(preceding, "crates/core/src/menu.rs").is_empty());
    }

    #[test]
    fn pragma_does_not_leak_past_its_target_line() {
        let text = concat!(
            "// lint:allow(panic-hygiene) only the next line\n",
            "pub fn f() { Some(1).unwrap(); }\n",
            "pub fn g() { Some(1).unwrap(); }\n",
        );
        assert_eq!(
            rules_at(text, "crates/core/src/menu.rs"),
            vec![(Rule::PanicHygiene, 3)]
        );
    }

    #[test]
    fn pragma_without_reason_is_bad_and_does_not_suppress() {
        let text = concat!(
            "// lint:allow(panic-hygiene)\n",
            "pub fn f() { Some(1).unwrap(); }\n",
        );
        assert_eq!(
            rules_at(text, "crates/core/src/menu.rs"),
            vec![(Rule::BadPragma, 1), (Rule::PanicHygiene, 2)]
        );
    }

    #[test]
    fn unsafe_needs_allowlist_and_safety_comment() {
        let outside = "pub fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        assert_eq!(
            rules_at(outside, "crates/core/src/menu.rs"),
            vec![(Rule::UnsafeAudit, 1)]
        );
        let unaudited = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(
            rules_at(unaudited, "crates/par/src/pool.rs"),
            vec![(Rule::UnsafeAudit, 1)]
        );
        let audited = concat!(
            "// SAFETY: caller guarantees p is valid for reads\n",
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        assert!(rules_at(audited, "crates/par/src/pool.rs").is_empty());
    }

    #[test]
    fn attribute_between_safety_comment_and_unsafe_is_fine() {
        let text = concat!(
            "// SAFETY: justified above the attribute\n",
            "#[allow(unsafe_code)]\n",
            "unsafe impl Send for X {}\n",
        );
        assert!(rules_at(text, "crates/par/src/pool.rs").is_empty());
    }

    #[test]
    fn forbid_unsafe_code_attribute_does_not_fire() {
        let text = "#![forbid(unsafe_code)]\n";
        assert!(rules_at(text, "crates/core/src/lib.rs").is_empty());
    }

    #[test]
    fn event_drain_flagged_outside_core_only() {
        let text = "fn f(dev: &mut D) { let _ = dev.drain_events(); }\n";
        assert_eq!(
            rules_at(text, "crates/eval/src/experiments/fig4.rs"),
            vec![(Rule::EventDrain, 1)]
        );
        assert_eq!(
            rules_at(text, "examples/quickstart.rs"),
            vec![(Rule::EventDrain, 1)]
        );
        assert!(rules_at(text, "crates/core/src/device.rs").is_empty());
        let telemetry = "fn f(dev: &mut D) { for t in dev.drain_telemetry() {} }\n";
        assert_eq!(
            rules_at(telemetry, "crates/host/src/session.rs"),
            vec![(Rule::EventDrain, 1)]
        );
    }

    #[test]
    fn raw_seq_flagged_outside_hw_only() {
        let text = "fn f() -> Seq16 { Seq16::from_raw(7) }\n";
        assert_eq!(
            rules_at(text, "crates/host/src/telemetry.rs"),
            vec![(Rule::RawSeq, 1)]
        );
        assert_eq!(
            rules_at(text, "crates/eval/src/experiments/arq.rs"),
            vec![(Rule::RawSeq, 1)]
        );
        assert!(rules_at(text, "crates/hw/src/arq.rs").is_empty());
        let decoded = "fn f(p: &[u8]) { let _ = decode_data(p); }\n";
        assert!(rules_at(decoded, "crates/host/src/telemetry.rs").is_empty());
    }

    #[test]
    fn raw_decoder_flagged_in_ingest_outside_the_shard_registry() {
        let text = "fn f() -> StreamDecoder { StreamDecoder::with_arq_resync() }\n";
        assert_eq!(
            rules_at(text, "crates/ingest/src/service.rs"),
            vec![(Rule::RawDecoder, 1)]
        );
        assert_eq!(
            rules_at(text, "crates/ingest/tests/backpressure.rs"),
            vec![(Rule::RawDecoder, 1)]
        );
        // The shard registry is the sanctioned construction site, and
        // other crates (the single-device host path) are out of scope.
        assert!(rules_at(text, "crates/ingest/src/shard.rs").is_empty());
        assert!(rules_at(text, "crates/host/src/session.rs").is_empty());
        let plain = "fn f() -> StreamDecoder { StreamDecoder::new() }\n";
        assert_eq!(
            rules_at(plain, "crates/ingest/src/loadgen.rs"),
            vec![(Rule::RawDecoder, 1)]
        );
        let pragmad = concat!(
            "// lint:allow(raw-decoder) capture-time ground truth, outside any shard's books\n",
            "fn f() -> StreamDecoder { StreamDecoder::with_arq() }\n",
        );
        assert!(rules_at(pragmad, "crates/ingest/src/loadgen.rs").is_empty());
    }

    #[test]
    fn raw_filter_flagged_outside_recognizer_and_sensors() {
        let text = "fn f() -> MedianFilter { MedianFilter::new(9) }\n";
        assert_eq!(
            rules_at(text, "crates/core/src/firmware.rs"),
            vec![(Rule::RawFilter, 1)]
        );
        // Test-like code gets no exemption: benches hand-wiring the
        // stages dodge the budgeted chain exactly like library code.
        assert_eq!(
            rules_at(text, "crates/bench/benches/micro.rs"),
            vec![(Rule::RawFilter, 1)]
        );
        // The two sanctioned construction sites: the stage owners.
        assert!(rules_at(text, "crates/recognizer/src/classic.rs").is_empty());
        assert!(rules_at(text, "crates/sensors/src/filter.rs").is_empty());
        let ema = "fn f() -> Ema { Ema::new(0.45) }\n";
        assert_eq!(
            rules_at(ema, "crates/baselines/src/distscroll.rs"),
            vec![(Rule::RawFilter, 1)]
        );
        let gate = "fn f() -> SlewGate { SlewGate::new(120.0, 4) }\n";
        assert_eq!(
            rules_at(gate, "crates/eval/src/runner.rs"),
            vec![(Rule::RawFilter, 1)]
        );
        // Mentions in type position or prose never fire: only the
        // word-bounded constructor tokens do.
        let typed = "fn f(m: &MedianFilter, e: &Ema) -> u16 { m.len() as u16 }\n";
        assert!(rules_at(typed, "crates/core/src/firmware.rs").is_empty());
        let pragmad = concat!(
            "// lint:allow(raw-filter) standby engine smooths the accel channel, not scroll\n",
            "fn f() -> Ema { Ema::new(0.2) }\n",
        );
        assert!(rules_at(pragmad, "crates/core/src/firmware.rs").is_empty());
    }

    #[test]
    fn fixed_tick_flagged_outside_hw_and_tests() {
        let text = "fn f(b: &mut Board, d: SimDuration) { board.step(d); }\n";
        assert_eq!(
            rules_at(text, "crates/eval/src/runner.rs"),
            vec![(Rule::FixedTick, 1)]
        );
        assert_eq!(
            rules_at(text, "examples/quickstart.rs"),
            vec![(Rule::FixedTick, 1)]
        );
        assert!(rules_at(text, "crates/hw/src/board.rs").is_empty());
        let advance = "fn f(c: &mut SimClock, d: SimDuration) { clock.advance(d); }\n";
        assert_eq!(
            rules_at(advance, "crates/core/src/device.rs"),
            vec![(Rule::FixedTick, 1)]
        );
        let in_test = concat!(
            "pub fn ok() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(b: &mut Board, d: SimDuration) { board.step(d); }\n",
            "}\n",
        );
        assert!(rules_at(in_test, "crates/core/src/firmware.rs").is_empty());
        let pragmad = concat!(
            "// lint:allow(fixed-tick) the event-core dispatch is the sanctioned stepping site\n",
            "fn f(b: &mut Board, d: SimDuration) { board.step(d); }\n",
        );
        assert!(rules_at(pragmad, "crates/core/src/device.rs").is_empty());
    }

    #[test]
    fn event_drain_into_scratch_forms_are_fine() {
        let text = concat!(
            "fn f(dev: &mut D, buf: &mut Vec<E>) {\n",
            "    dev.drain_events_into(buf);\n",
            "    dev.drain_telemetry_into(buf);\n",
            "    dev.poll_events(&mut |_e| {});\n",
            "}\n",
        );
        assert!(rules_at(text, "crates/eval/src/experiments/fig4.rs").is_empty());
    }

    #[test]
    fn hash_collections_flagged_in_lib_code() {
        let text = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_at(text, "crates/host/src/telemetry.rs"),
            vec![(Rule::UnorderedIter, 1)]
        );
        assert!(rules_at(text, "crates/host/tests/t.rs").is_empty());
    }

    #[test]
    fn multiline_raw_strings_are_blanked() {
        let text = concat!(
            "pub fn f() -> &'static str {\n",
            "    r#\"first line .unwrap()\n",
            "    Instant::now() still inside the raw string\n",
            "    \"#\n",
            "}\n",
        );
        assert!(rules_at(text, "crates/eval/src/report.rs").is_empty());
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_derail_the_lexer() {
        let text = concat!(
            "pub fn f(c: char) -> bool { c == '\"' }\n",
            "pub fn g<'a>(s: &'a str) -> &'a str { s }\n",
            "pub fn bad() { Option::<u8>::None.unwrap(); }\n",
        );
        assert_eq!(
            rules_at(text, "crates/core/src/menu.rs"),
            vec![(Rule::PanicHygiene, 3)]
        );
    }

    // --- flow-aware rules ---------------------------------------------------

    #[test]
    fn guard_live_across_fanout_fires() {
        let text = concat!(
            "fn f(m: &std::sync::Mutex<u32>, jobs: &[J]) {\n",
            "    let guard = lock_unpoisoned(m);\n",
            "    par_map(jobs, &(), |_, j| work(j));\n",
            "}\n",
        );
        assert_eq!(
            rules_at(text, "crates/ingest/src/service.rs"),
            vec![(Rule::GuardAcrossFanout, 3)]
        );
    }

    #[test]
    fn guard_dropped_before_fanout_is_clean() {
        let text = concat!(
            "fn f(m: &std::sync::Mutex<u32>, jobs: &[J]) {\n",
            "    let guard = m.lock();\n",
            "    let n = *guard;\n",
            "    drop(guard);\n",
            "    par_map(jobs, &n, |_, j| work(j));\n",
            "}\n",
        );
        assert!(rules_at(text, "crates/ingest/src/service.rs").is_empty());
    }

    #[test]
    fn lock_inside_worker_closure_is_clean() {
        let text = concat!(
            "fn f(shards: &[std::sync::Mutex<S>], jobs: &[J]) {\n",
            "    par_map(jobs, shards, |_, m| {\n",
            "        lock_unpoisoned(m).process_queue();\n",
            "    });\n",
            "}\n",
        );
        assert!(rules_at(text, "crates/ingest/src/service.rs").is_empty());
    }

    #[test]
    fn guard_across_fanout_exempt_inside_par() {
        let text = concat!(
            "fn f(m: &std::sync::Mutex<u32>, jobs: &[J]) {\n",
            "    let guard = m.lock();\n",
            "    par_map(jobs, &(), |_, j| work(j));\n",
            "}\n",
        );
        assert!(rules_at(text, "crates/par/src/pool.rs")
            .iter()
            .all(|(r, _)| *r != Rule::GuardAcrossFanout));
    }

    #[test]
    fn serial_arith_flags_raw_comparisons_on_tainted_bindings() {
        let text = concat!(
            "fn f(record: &Record, last: u16) {\n",
            "    let stamp = record.stamp();\n",
            "    if stamp < last {\n",
            "        resync();\n",
            "    }\n",
            "}\n",
        );
        assert_eq!(
            rules_at(text, "crates/host/src/session.rs"),
            vec![(Rule::SerialArith, 3)]
        );
    }

    #[test]
    fn serial_arith_flags_direct_raw_accessor_arithmetic() {
        let text = "fn f(s: Seq16) -> u16 { s.raw() + 1 }\n";
        assert_eq!(
            rules_at(text, "crates/host/src/session.rs"),
            vec![(Rule::SerialArith, 1)]
        );
    }

    #[test]
    fn serial_arith_laundered_through_rfc1982_helpers_is_clean() {
        let text = concat!(
            "fn f(record: &Record, front: Seq16) {\n",
            "    let stamp = record.stamp();\n",
            "    let delta = u64::from(stamp.wrapping_sub(front));\n",
            "    if delta < SERIAL_HALF {\n",
            "        advance();\n",
            "    }\n",
            "    if stamp.wrapping_sub(front) < HALF {\n",
            "        advance();\n",
            "    }\n",
            "}\n",
        );
        assert!(rules_at(text, "crates/host/src/session.rs").is_empty());
    }

    #[test]
    fn serial_arith_exempt_inside_hw_and_ignores_type_position() {
        let raw = "fn f(s: Seq16, t: Seq16) -> bool { s.raw() < t.raw() }\n";
        assert!(rules_at(raw, "crates/hw/src/arq.rs").is_empty());
        // `Seq16` in type position (generics) is not an operand.
        let types = "fn f(v: Vec<Seq16>) -> usize { v.len() + 1 }\n";
        assert!(rules_at(types, "crates/host/src/session.rs").is_empty());
    }

    #[test]
    fn unused_pragma_is_flagged_at_the_pragma_line() {
        let text = concat!(
            "// lint:allow(panic-hygiene) nothing here panics any more\n",
            "pub fn fine() -> u32 { 7 }\n",
        );
        assert_eq!(
            rules_at(text, "crates/core/src/menu.rs"),
            vec![(Rule::UnusedPragma, 1)]
        );
    }

    #[test]
    fn used_pragma_is_not_flagged() {
        let text = concat!(
            "// lint:allow(panic-hygiene) startup invariant holds here\n",
            "pub fn f() { Some(1).unwrap(); }\n",
        );
        assert!(rules_at(text, "crates/core/src/menu.rs").is_empty());
    }

    #[test]
    fn unused_pragma_cannot_be_suppressed_by_a_pragma() {
        let text = concat!(
            "// lint:allow(unused-pragma) trying to excuse staleness itself\n",
            "pub fn fine() -> u32 { 7 }\n",
        );
        assert_eq!(
            rules_at(text, "crates/core/src/menu.rs"),
            vec![(Rule::UnusedPragma, 1)]
        );
    }

    #[test]
    fn invalid_pragma_is_bad_but_not_also_unused() {
        let text = concat!(
            "// lint:allow(no-such-rule) reason text long enough\n",
            "pub fn fine() -> u32 { 7 }\n",
        );
        assert_eq!(
            rules_at(text, "crates/core/src/menu.rs"),
            vec![(Rule::BadPragma, 1)]
        );
    }

    #[test]
    fn serial_operand_extraction_handles_chains() {
        assert_eq!(
            serial_arith_operand("if record.stamp() < last {", &[]),
            Some("record.stamp()".to_string())
        );
        assert_eq!(
            serial_arith_operand("let d = stamp.wrapping_sub(front) < HALF;", &["stamp"]),
            None
        );
        assert_eq!(
            serial_arith_operand("x += seq.raw();", &[]),
            Some("seq.raw()".to_string())
        );
        assert_eq!(serial_arith_operand("let r = 0..n;", &["n"]), None);
        assert_eq!(serial_arith_operand("fn f() -> u16 {", &[]), None);
    }
}
