//! A minimal JSON reader, enough to load the scan cache and to prove
//! the emitted SARIF is well-formed without pulling in serde — the
//! linter stays dependency-free by contract.
//!
//! Strictness is tuned for our use: full escape handling (including
//! `\uXXXX` with surrogate pairs folded to the replacement character
//! when unpaired), a recursion cap instead of unbounded stack, and no
//! extensions (no comments, no trailing commas). Numbers are kept as
//! `f64`, which is exact for every integer the cache stores (line
//! numbers, hashes are stored as hex *strings* for this reason).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is not preserved (sorted), which is fine
    /// for the cache and for validation.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exact.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Maximum nesting depth accepted — far above anything we emit, low
/// enough that hostile input cannot overflow the stack.
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document. Trailing non-whitespace is an
/// error, as is any structural defect.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = Parser {
        chars: &bytes,
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.peek(),
            Some(' ') | Some('\t') | Some('\n') | Some('\r')
        ) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        for w in word.chars() {
            if self.bump() != Some(w) {
                return Err(format!("bad literal near offset {}", self.pos));
            }
        }
        Ok(value)
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(depth),
            Some('[') => self.array(depth),
            Some('"') => Ok(JsonValue::Str(self.string()?)),
            Some('t') => self.literal("true", JsonValue::Bool(true)),
            Some('f') => self.literal("false", JsonValue::Bool(false)),
            Some('n') => self.literal("null", JsonValue::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.eat('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(':')?;
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(JsonValue::Obj(map)),
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.eat('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            let val = self.value(depth + 1)?;
            out.push(val);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(JsonValue::Arr(out)),
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let code = self.hex4()?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err("raw control character in string".to_string())
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| "truncated \\u escape".to_string())?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| "bad hex digit in \\u escape".to_string())?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#)
            .expect("valid document");
        assert_eq!(v.get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(|c| c.as_str()),
            Some("x\ny")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"\\q\"").is_err());
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err(), "depth cap must hold");
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""\u0041\u00e9""#).expect("valid escapes");
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn integers_survive_as_usize() {
        let v = parse("42").expect("number");
        assert_eq!(v.as_usize(), Some(42));
        assert_eq!(parse("2.5").expect("number").as_usize(), None);
    }
}
