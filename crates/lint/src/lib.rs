//! Workspace static analysis: the invariants the executor and the
//! evaluation pipeline rely on, checked by machine instead of by
//! convention.
//!
//! The harness promises byte-identical reports at any `--jobs` value.
//! That promise rests on rules no compiler enforces: all threading goes
//! through `distscroll-par`, no eval-path code reads the wall clock or
//! an ambient RNG, nothing iterates an unordered map on the way to a
//! report, every `unsafe` block is audited, and library code fails
//! through `Result` instead of panicking mid-experiment. This crate is
//! a dependency-free semantic analyzer that walks the non-vendored
//! workspace sources and flags violations of exactly those rules;
//! `cargo run -p xtask -- lint` drives it, CI runs it on every push.
//!
//! Since PR 8 the scanner is no longer a pure line matcher: a
//! brace-aware parser ([`parse`]) recovers items, `#[cfg(test)]`
//! regions and `let`-binding lifetimes, a workspace symbol index
//! ([`index`]) is built as a by-product, results are cached per file
//! under `target/lint-cache` ([`cache`]), and diagnostics are emitted
//! as SARIF 2.1.0 ([`sarif`]) alongside the JSON report.
//!
//! # Rules
//!
//! | id | scope | forbids |
//! |----|-------|---------|
//! | `thread-discipline` | everywhere but `crates/par` | `thread::spawn` / `thread::scope` / `thread::Builder` / `rayon` |
//! | `wall-clock` | library code of `core`, `eval`, `baselines`, `host`, `ingest` | `Instant::now` / `SystemTime::now` |
//! | `ambient-rng` | library code of `core`, `eval`, `baselines`, `host`, `ingest` | `thread_rng` / `rand::random` / `from_entropy` / `OsRng` |
//! | `unordered-iter` | first-party library code | `HashMap` / `HashSet` (use `BTreeMap` / `BTreeSet`) |
//! | `unsafe-audit` | everywhere | `unsafe` outside the audited allowlist, or without a `// SAFETY:` comment |
//! | `panic-hygiene` | first-party library code outside tests | `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` |
//! | `event-drain` | everywhere but `crates/core` | `drain_events` / `drain_telemetry` (allocate-per-poll; use the sink or `drain_*_into` forms) |
//! | `raw-seq` | everywhere but `crates/hw` | `from_raw` — ARQ sequence numbers come from `decode_data` / `decode_ack`, never hand-built |
//! | `raw-decoder` | `crates/ingest` outside `src/shard.rs` | `StreamDecoder::new` / `::with_arq` / `::with_arq_resync` / `::default` — fleet sessions are opened by the shard registry only |
//! | `fixed-tick` | everywhere but `crates/hw` and `#[cfg(test)]` | `clock.advance` / `board.step` — register a deadline with `distscroll_hw::sched` and drive time through the device dispatch |
//! | `guard-across-fanout` | everywhere but `crates/par` | a `.lock()` / `lock_unpoisoned()` guard binding still live at a `par_map` / `par_map_ctx` call — deadlock risk under the token budget |
//! | `serial-arith` | everywhere but `crates/hw` | raw `+` `-` `<` `>` on a wrapping serial number (`Seq16`, 16-bit stamps) — use the RFC 1982 helpers |
//! | `unused-pragma` | everywhere | a valid `lint:allow` pragma that suppresses zero diagnostics |
//! | `bad-pragma` | everywhere | `lint:allow` pragmas that name no known rule or carry no reason |
//!
//! Vendored crates (`rand`, `proptest`, `criterion`) are excluded, the
//! same set the clippy CI job excludes. "Library code" excludes
//! `tests/`, `benches/`, `examples/`, binary entry points
//! (`main.rs`, `src/bin/`) and `#[cfg(test)]` modules.
//!
//! # Allow pragmas
//!
//! A violation that is *intended* must say so, on its own line or at
//! the end of the offending line:
//!
//! ```text
//! // lint:allow(wall-clock) timing is the measured quantity here, not an input
//! let t0 = std::time::Instant::now();
//! ```
//!
//! The rule name must be known and the reason non-empty — a pragma
//! missing either is itself a violation (`bad-pragma`), and a valid
//! pragma that suppresses nothing is one too (`unused-pragma`), so
//! suppressions stay auditable and can never rot.
//!
//! # Self-test
//!
//! `fixtures/` holds known-bad snippets, each declaring the virtual
//! path it should be scanned as and the exact diagnostics it must
//! produce. [`self_test`] fails if any seeded violation goes unflagged
//! or any extra diagnostic appears — the linter is tested against its
//! own spec on every CI run.

pub mod cache;
pub mod index;
pub mod json;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod scan;

pub use cache::CacheStats;
pub use index::IndexStats;
pub use rules::{scan_source, FileContext, FileKind, Rule, ALL_RULES, RULES_VERSION};
pub use sarif::diagnostics_to_sarif;
pub use scan::{scan_workspace, scan_workspace_with, ScanOptions, ScanReport};

use std::fmt;
use std::path::PathBuf;

/// One finding: a rule violated at a line of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message,
            self.snippet
        )
    }
}

/// Failures of the scan itself (I/O, malformed fixtures) — *not* lint
/// findings, which are data, not errors.
#[derive(Debug)]
pub enum LintError {
    /// A file or directory could not be read.
    Io {
        /// What the scanner was trying to read.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A fixture file violates the fixture grammar.
    Fixture(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            LintError::Fixture(msg) => write!(f, "fixture error: {msg}"),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            LintError::Fixture(_) => None,
        }
    }
}

/// Escapes a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a machine-readable JSON document (schema 2):
/// scan totals, cache accounting (`hits`/`misses` each on their own
/// line so CI can assert the warm run with a grep), symbol-index
/// stats, and the diagnostics themselves — the artifact the CI
/// `static-analysis` job uploads.
pub fn diagnostics_to_json(
    diags: &[Diagnostic],
    files_scanned: usize,
    cache: &CacheStats,
    index: &IndexStats,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 2,\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"violations\": {},\n", diags.len()));
    out.push_str("  \"cache\": {\n");
    out.push_str(&format!("    \"enabled\": {},\n", cache.enabled));
    out.push_str(&format!("    \"hits\": {},\n", cache.hits));
    out.push_str(&format!("    \"misses\": {}\n", cache.misses));
    out.push_str("  },\n");
    out.push_str("  \"index\": {\n");
    out.push_str(&format!("    \"crates\": {},\n", index.crates));
    out.push_str(&format!("    \"modules\": {},\n", index.modules));
    out.push_str(&format!("    \"fns\": {},\n", index.fns));
    out.push_str(&format!("    \"impls\": {},\n", index.impls));
    out.push_str(&format!("    \"uses\": {},\n", index.uses));
    out.push_str(&format!("    \"bindings\": {}\n", index.bindings));
    out.push_str("  },\n");
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let comma = if i + 1 < diags.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \
             \"snippet\": \"{}\"}}{comma}\n",
            json_escape(&d.file),
            d.line,
            d.rule.name(),
            json_escape(&d.message),
            json_escape(&d.snippet),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the scanner against every fixture under `fixture_dir` and
/// checks that each produces *exactly* its declared diagnostics.
///
/// A fixture is a `.rs` file that is never compiled; its header
/// declares how to scan it and what must be found:
///
/// ```text
/// //@ path: crates/eval/src/bad_clock.rs
/// //@ expect: wall-clock@5
/// //@ expect: wall-clock@6
/// ```
///
/// `path` is the virtual workspace path the snippet is scanned as
/// (rules are path-scoped); each `expect` names a rule and the 1-based
/// line it must fire on. No `expect` lines means the fixture must scan
/// clean. Returns the list of per-fixture summaries on success.
///
/// # Errors
///
/// Returns [`LintError::Fixture`] when a fixture is malformed, misses
/// an expected diagnostic, or produces an unexpected one, and
/// [`LintError::Io`] when the fixture directory cannot be read.
pub fn self_test(fixture_dir: &std::path::Path) -> Result<Vec<String>, LintError> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(fixture_dir)
        .map_err(|source| LintError::Io {
            path: fixture_dir.to_path_buf(),
            source,
        })?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(LintError::Fixture(format!(
            "no .rs fixtures found under {}",
            fixture_dir.display()
        )));
    }

    let mut summaries = Vec::new();
    let mut rules_covered: Vec<Rule> = Vec::new();
    let mut all_diags: Vec<Diagnostic> = Vec::new();
    for path in &entries {
        let text = std::fs::read_to_string(path).map_err(|source| LintError::Io {
            path: path.clone(),
            source,
        })?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let (virtual_path, expected) = parse_fixture_header(&name, &text)?;

        let ctx = FileContext::classify(&virtual_path);
        let diags = scan_source(&text, &ctx);
        let mut found: Vec<(Rule, usize)> = diags.iter().map(|d| (d.rule, d.line)).collect();
        all_diags.extend(diags);
        found.sort();
        let mut expected_sorted = expected.clone();
        expected_sorted.sort();

        if found != expected_sorted {
            return Err(LintError::Fixture(format!(
                "{name}: scanned as {virtual_path}\n  expected: {}\n  found:    {}",
                render_expectations(&expected_sorted),
                render_expectations(&found),
            )));
        }
        for (rule, _) in &found {
            if !rules_covered.contains(rule) {
                rules_covered.push(*rule);
            }
        }
        summaries.push(format!(
            "{name}: {} diagnostic(s) as expected",
            expected.len()
        ));
    }

    // The fixture suite must exercise every rule, so a new rule cannot
    // land without a known-bad snippet proving the scanner catches it.
    for rule in ALL_RULES {
        if !rules_covered.contains(rule) {
            return Err(LintError::Fixture(format!(
                "no fixture exercises rule `{}` — add a known-bad snippet",
                rule.name()
            )));
        }
    }

    // The SARIF emitter is part of the contract: render every fixture
    // diagnostic and prove the document parses as JSON with one rule
    // descriptor per rule.
    let sarif_doc = sarif::diagnostics_to_sarif(&all_diags);
    let parsed = json::parse(&sarif_doc)
        .map_err(|e| LintError::Fixture(format!("emitted SARIF is not valid JSON: {e}")))?;
    let rules_len = parsed
        .get("runs")
        .and_then(|r| r.as_arr())
        .and_then(|runs| runs.first())
        .and_then(|run| run.get("tool"))
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
        .and_then(|r| r.as_arr())
        .map(<[_]>::len);
    if rules_len != Some(ALL_RULES.len()) {
        return Err(LintError::Fixture(format!(
            "SARIF rule table has {rules_len:?} entries, expected {}",
            ALL_RULES.len()
        )));
    }
    summaries.push(format!(
        "sarif: {} result(s) validated against the 2.1.0 shape",
        all_diags.len()
    ));
    Ok(summaries)
}

fn render_expectations(list: &[(Rule, usize)]) -> String {
    if list.is_empty() {
        return "(clean)".to_string();
    }
    list.iter()
        .map(|(r, l)| format!("{}@{l}", r.name()))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parses the `//@ path:` / `//@ expect:` fixture header.
fn parse_fixture_header(name: &str, text: &str) -> Result<(String, Vec<(Rule, usize)>), LintError> {
    let mut virtual_path = None;
    let mut expected = Vec::new();
    for line in text.lines() {
        let Some(directive) = line.trim().strip_prefix("//@") else {
            continue;
        };
        let directive = directive.trim();
        if let Some(p) = directive.strip_prefix("path:") {
            virtual_path = Some(p.trim().to_string());
        } else if let Some(e) = directive.strip_prefix("expect:") {
            let e = e.trim();
            let (rule_name, line_no) = e.split_once('@').ok_or_else(|| {
                LintError::Fixture(format!("{name}: expect `{e}` is not rule@line"))
            })?;
            let rule = Rule::from_name(rule_name.trim()).ok_or_else(|| {
                LintError::Fixture(format!("{name}: unknown rule `{rule_name}` in expect"))
            })?;
            let line_no: usize = line_no.trim().parse().map_err(|_| {
                LintError::Fixture(format!("{name}: bad line number in expect `{e}`"))
            })?;
            expected.push((rule, line_no));
        } else {
            return Err(LintError::Fixture(format!(
                "{name}: unknown fixture directive `//@ {directive}`"
            )));
        }
    }
    let virtual_path = virtual_path
        .ok_or_else(|| LintError::Fixture(format!("{name}: missing `//@ path:` directive")))?;
    Ok((virtual_path, expected))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_document_shape_holds() {
        let diags = vec![Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            rule: Rule::PanicHygiene,
            message: "no".into(),
            snippet: "x.unwrap()".into(),
        }];
        let cache = CacheStats {
            enabled: true,
            hits: 7,
            misses: 3,
        };
        let index = IndexStats {
            crates: 2,
            modules: 5,
            fns: 40,
            impls: 6,
            uses: 12,
            bindings: 90,
        };
        let doc = diagnostics_to_json(&diags, 10, &cache, &index);
        assert!(doc.contains("\"schema\": 2"));
        assert!(doc.contains("\"files_scanned\": 10"));
        assert!(doc.contains("\"hits\": 7"));
        assert!(doc.contains("\"misses\": 3"));
        assert!(doc.contains("\"fns\": 40"));
        assert!(doc.contains("\"rule\": \"panic-hygiene\""));
        assert!(doc.contains("\"line\": 3"));
        // The report must itself parse under the bundled JSON reader.
        json::parse(&doc).expect("schema-2 report must be valid JSON");
    }

    #[test]
    fn fixture_header_parses_path_and_expectations() {
        let text = "//@ path: crates/eval/src/x.rs\n//@ expect: wall-clock@4\nfn f() {}\n";
        let (path, expected) = parse_fixture_header("t.rs", text).expect("valid header");
        assert_eq!(path, "crates/eval/src/x.rs");
        assert_eq!(expected, vec![(Rule::WallClock, 4)]);
    }

    #[test]
    fn fixture_header_rejects_unknown_rules_and_missing_path() {
        assert!(parse_fixture_header("t.rs", "//@ expect: nope@4\n").is_err());
        assert!(parse_fixture_header("t.rs", "fn f() {}\n").is_err());
    }

    #[test]
    fn self_test_passes_on_the_shipped_fixtures() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let summaries = self_test(&dir).expect("shipped fixtures must satisfy the self-test");
        assert!(summaries.len() >= 8, "expected a broad fixture suite");
    }
}
