//! The semantic layer under the rules: a lexer that strips comments
//! and string literals, and a brace-aware item parser that recovers
//! enough structure — items, `#[cfg(test)]` regions, and `let`-binding
//! lifetimes inside function bodies — for flow-aware rules to reason
//! about code that spans lines.
//!
//! This is deliberately *not* a Rust grammar. It is a single forward
//! pass that tracks brace depth and never backtracks, so it is fast,
//! dependency-free, total (any byte sequence parses to *something*),
//! and deterministic: parsing the same text twice yields the same
//! [`ParsedFile`], a property the torture tests pin down. Where the
//! grammar is ambiguous to a scanner (closures, `let` inside macro
//! arms) the parser errs toward recording *less* structure, because
//! every downstream rule treats missing structure as "no finding".
//!
//! The lexer improves on the PR 3 line scanner in one semantic way:
//! block comments nest, as they do in Rust, so `/* outer /* inner */
//! still comment */` never leaks tokens into code.

use std::fmt;

/// One physical line split into its code and comment parts by the
/// lexer. String-literal *contents* are blanked out of `code` so rule
/// patterns never match inside text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitLine {
    /// The line with comments removed and string contents blanked.
    pub code: String,
    /// Concatenated comment text on the line (line + block comments).
    pub comment: String,
}

/// Character-level lexer state carried across lines: nested block
/// comments and (raw) string literals.
#[derive(Default)]
pub struct LexState {
    /// How many `/*` are open; block comments nest in Rust.
    block_comment_depth: usize,
    /// `Some(hashes)` inside a (raw) string literal; `hashes` is the
    /// `#` count of a raw string, 0 for a normal `"…"` literal.
    in_string: Option<usize>,
}

impl LexState {
    /// Splits one physical line, updating the cross-line state.
    pub fn split(&mut self, line: &str) -> SplitLine {
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if self.block_comment_depth > 0 {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    self.block_comment_depth -= 1;
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    self.block_comment_depth += 1;
                    comment.push_str("/*");
                    i += 2;
                } else {
                    comment.push(chars[i]);
                    i += 1;
                }
                continue;
            }
            if let Some(hashes) = self.in_string {
                // Inside a string literal: blank the contents so code
                // patterns never match inside text.
                if chars[i] == '\\' && hashes == 0 {
                    i += 2; // skip the escaped character
                    continue;
                }
                if chars[i] == '"' {
                    let closes = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                    if closes {
                        self.in_string = None;
                        code.push('"');
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
                continue;
            }
            match chars[i] {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    comment.push_str(&chars[i + 2..].iter().collect::<String>());
                    break;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    self.block_comment_depth = 1;
                    i += 2;
                }
                '"' => {
                    code.push('"');
                    self.in_string = Some(0);
                    i += 1;
                }
                'r' if chars.get(i + 1) == Some(&'"')
                    || (chars.get(i + 1) == Some(&'#')
                        && matches!(chars.get(i + 2), Some(&'#') | Some(&'"'))) =>
                {
                    // Raw string: r"…" or r#"…"# (any hash depth).
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        code.push('"');
                        self.in_string = Some(hashes);
                        i = j + 1;
                    } else {
                        code.push(chars[i]);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal or lifetime. A char literal closes
                    // within a few characters ('x', '\n', '\u{..}');
                    // a lifetime has no closing quote before a
                    // non-ident char — pass it through unchanged.
                    if let Some(close) = close_of_char_literal(&chars, i) {
                        code.push('\'');
                        i = close + 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        SplitLine { code, comment }
    }
}

/// If `chars[start]` opens a char literal, returns the index of its
/// closing quote; `None` for lifetimes.
fn close_of_char_literal(chars: &[char], start: usize) -> Option<usize> {
    let mut j = start + 1;
    if chars.get(j) == Some(&'\\') {
        // Escaped char: find the next unescaped quote within a short
        // window (covers \n, \', \u{1F600}).
        let limit = (start + 12).min(chars.len());
        j += 1;
        while j < limit {
            if chars[j] == '\'' {
                return Some(j);
            }
            j += 1;
        }
        return None;
    }
    // 'x' — exactly one character then a quote; anything else is a
    // lifetime like 'static or 'a.
    if chars.get(j).is_some() && chars.get(j + 1) == Some(&'\'') {
        return Some(j + 1);
    }
    None
}

/// What kind of top-level (or nested) item a header line introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ItemKind {
    /// `fn` — free or associated.
    Fn,
    /// `impl` block.
    Impl,
    /// `mod` — inline or out-of-line.
    Mod,
    /// `use` declaration.
    Use,
    /// `struct` definition.
    Struct,
    /// `enum` definition.
    Enum,
    /// `trait` definition.
    Trait,
    /// `const` item (not `const fn`).
    Const,
    /// `static` item.
    Static,
    /// `type` alias.
    TypeAlias,
}

impl ItemKind {
    /// Stable lower-case id used in the cache serialization.
    pub fn name(self) -> &'static str {
        match self {
            ItemKind::Fn => "fn",
            ItemKind::Impl => "impl",
            ItemKind::Mod => "mod",
            ItemKind::Use => "use",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Trait => "trait",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::TypeAlias => "type",
        }
    }

    /// Inverse of [`ItemKind::name`], for cache deserialization.
    pub fn from_name(name: &str) -> Option<ItemKind> {
        const ALL: &[ItemKind] = &[
            ItemKind::Fn,
            ItemKind::Impl,
            ItemKind::Mod,
            ItemKind::Use,
            ItemKind::Struct,
            ItemKind::Enum,
            ItemKind::Trait,
            ItemKind::Const,
            ItemKind::Static,
            ItemKind::TypeAlias,
        ];
        ALL.iter().copied().find(|k| k.name() == name)
    }
}

impl fmt::Display for ItemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One item recovered from a file: a symbol-index row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name (for `impl`: the header text; for `use`: the path).
    pub name: String,
    /// 1-based line of the header.
    pub line: usize,
    /// 1-based line where the item's body closes (header line for
    /// semicolon items).
    pub end_line: usize,
}

/// How a `let` binding is classified by its initializer — the facts the
/// flow-aware rules consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingClass {
    /// Holds a mutex guard (`.lock()` / `lock_unpoisoned(..)`).
    Guard,
    /// Carries a wrapping serial number (`Seq16`, a 16-bit stamp) that
    /// raw integer arithmetic would misorder at the wrap.
    Serial,
    /// Anything else.
    Plain,
}

/// One `let` binding inside a function body, with its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The bound identifier.
    pub name: String,
    /// Classification derived from the initializer and annotation.
    pub class: BindingClass,
    /// 1-based line of the `let`.
    pub line: usize,
    /// 1-based line where the enclosing block closes (last line of the
    /// file if the block never closes).
    pub scope_end: usize,
    /// Line of an explicit `drop(name)`, which ends liveness early.
    pub dropped_at: Option<usize>,
    /// Brace depth the binding was declared at (parser internal, kept
    /// for diagnostics).
    pub depth: usize,
}

impl Binding {
    /// Last line on which the binding is still live.
    pub fn live_until(&self) -> usize {
        self.dropped_at.unwrap_or(self.scope_end)
    }

    /// Is the binding live at `line` (1-based), excluding its own
    /// declaration line?
    pub fn live_across(&self, line: usize) -> bool {
        self.line < line && line <= self.live_until()
    }
}

/// The parse of one file: everything the rules and the symbol index
/// need, computed in a single pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFile {
    /// Original lines (for diagnostic snippets).
    pub raw: Vec<String>,
    /// Lexed lines: code with comments/strings stripped, plus comment
    /// text (pragmas live there).
    pub lines: Vec<SplitLine>,
    /// Items recovered from header lines, in source order.
    pub items: Vec<Item>,
    /// `let` bindings with lifetimes, in source order.
    pub bindings: Vec<Binding>,
    /// Per line: was it inside a `#[cfg(test)]` region when scanned?
    pub in_test: Vec<bool>,
}

/// Accumulates a `let` statement across lines until its `;`.
struct LetAcc {
    text: String,
    line: usize,
    depth: usize,
    spanned: usize,
}

/// How many lines a `let` statement may span before the parser gives
/// up and classifies what it has — a termination guard, not a limit
/// any real statement hits.
const MAX_LET_SPAN: usize = 40;

/// Parses one file. Total: never fails, never panics; unparseable
/// regions simply contribute no items or bindings.
pub fn parse_file(text: &str) -> ParsedFile {
    let raw: Vec<String> = text.lines().map(str::to_string).collect();
    let mut lex = LexState::default();
    let lines: Vec<SplitLine> = raw.iter().map(|l| lex.split(l)).collect();
    let total = lines.len().max(1);

    let mut items: Vec<Item> = Vec::new();
    let mut bindings: Vec<Binding> = Vec::new();
    let mut in_test = vec![false; lines.len()];

    let mut depth: usize = 0;
    // (item index, depth before its opening brace)
    let mut item_stack: Vec<(usize, usize)> = Vec::new();
    let mut pending_item: Option<usize> = None;
    let mut pending_let: Option<LetAcc> = None;

    // `#[cfg(test)]` region tracking, line-granular: after the
    // attribute, the next brace-opening item starts a region that ends
    // when the depth returns to its entry value.
    let mut pending_cfg_test = false;
    let mut test_region_floor: Option<usize> = None;

    for (idx, sl) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let code = sl.code.as_str();
        in_test[idx] = test_region_floor.is_some();

        // Item headers are recognized on the line's leading tokens,
        // but only outside a continuing `let` statement.
        if pending_let.is_none() {
            if let Some((kind, name)) = item_header(code.trim()) {
                let brace_pos = code.find('{');
                let semi_pos = code.find(';');
                let closed_by_semi = match (semi_pos, brace_pos) {
                    (Some(s), Some(b)) => s < b,
                    (Some(_), None) => true,
                    _ => false,
                };
                items.push(Item {
                    kind,
                    name,
                    line: line_no,
                    end_line: line_no,
                });
                if !closed_by_semi {
                    pending_item = Some(items.len() - 1);
                }
            }
        }

        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            pending_cfg_test = true;
        }

        let chars: Vec<char> = code.chars().collect();
        let mut i = 0;
        let mut let_started_here = false;
        while i < chars.len() {
            match chars[i] {
                '{' => {
                    if let Some(item_idx) = pending_item.take() {
                        item_stack.push((item_idx, depth));
                    }
                    depth += 1;
                    i += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while let Some(&(item_idx, open_depth)) = item_stack.last() {
                        if open_depth >= depth {
                            if let Some(item) = items.get_mut(item_idx) {
                                item.end_line = line_no;
                            }
                            item_stack.pop();
                        } else {
                            break;
                        }
                    }
                    for b in bindings.iter_mut() {
                        if b.scope_end == 0 && b.depth > depth {
                            b.scope_end = line_no;
                        }
                    }
                    i += 1;
                }
                ';' => {
                    // A semicolon while an item header still waits for
                    // its brace means the item had no body at all
                    // (trait method declaration, `mod x;`).
                    if let Some(item_idx) = pending_item.take() {
                        if let Some(item) = items.get_mut(item_idx) {
                            item.end_line = line_no;
                        }
                    }
                    i += 1;
                }
                c if is_ident_start(c) => {
                    let start = i;
                    while i < chars.len() && is_ident_char(chars[i]) {
                        i += 1;
                    }
                    let word: String = chars[start..i].iter().collect();
                    if word == "let" && pending_let.is_none() {
                        pending_let = Some(LetAcc {
                            text: chars[i..].iter().collect(),
                            line: line_no,
                            depth,
                            spanned: 0,
                        });
                        let_started_here = true;
                        // The rest of the line is captured; keep
                        // walking it for braces only.
                    }
                }
                _ => i += 1,
            }
        }

        // `#[cfg(test)]` floor bookkeeping mirrors the PR 3 scanner
        // exactly (line-granular, entry-depth floor).
        let depth_after = depth;
        let line_opened = code.contains('{');
        let line_closed = code.contains('}');
        if pending_cfg_test && line_opened {
            // Floor is the depth *before* this line's net change —
            // reconstruct it from the after-value.
            let net = (code.matches('{').count() as i64) - (code.matches('}').count() as i64);
            let before = (depth_after as i64 - net).max(0) as usize;
            test_region_floor = Some(before);
            pending_cfg_test = false;
        } else if pending_cfg_test && code.contains(';') {
            // `#[cfg(test)] mod x;` — out-of-line; nothing to skip.
            pending_cfg_test = false;
        }
        if let Some(floor) = test_region_floor {
            if depth_after <= floor && line_closed {
                test_region_floor = None;
            }
        }

        // Continue or finish an open `let` statement.
        if let Some(mut acc) = pending_let.take() {
            if !let_started_here {
                acc.text.push(' ');
                acc.text.push_str(code);
                acc.spanned += 1;
            }
            if acc.text.contains(';') || acc.spanned >= MAX_LET_SPAN || depth < acc.depth {
                let new = finish_let(&acc, &bindings, total);
                bindings.extend(new);
            } else {
                pending_let = Some(acc);
            }
        }

        // `drop(name)` ends a binding's liveness early.
        for name in dropped_names(code) {
            for b in bindings.iter_mut().rev() {
                if b.name == name && b.dropped_at.is_none() && b.scope_end == 0 {
                    b.dropped_at = Some(line_no);
                    break;
                }
            }
        }
    }

    if let Some(acc) = pending_let.take() {
        let new = finish_let(&acc, &bindings, total);
        bindings.extend(new);
    }
    for b in bindings.iter_mut() {
        if b.scope_end == 0 {
            b.scope_end = total;
        }
    }
    for &(item_idx, _) in &item_stack {
        if let Some(item) = items.get_mut(item_idx) {
            item.end_line = total;
        }
    }

    ParsedFile {
        raw,
        lines,
        items,
        bindings,
        in_test,
    }
}

/// Finalizes one accumulated `let` statement into bindings.
fn finish_let(acc: &LetAcc, existing: &[Binding], total: usize) -> Vec<Binding> {
    let (pattern, mut init) = split_let(&acc.text);
    // Truncate the initializer at the first block so a `match`/`if`
    // body's statements never leak into classification.
    if let Some(b) = init.find('{') {
        init = &init[..b];
    }
    let annotated_serial = word_in(pattern, "Seq16");
    let class = classify_init(init, annotated_serial, existing);
    pattern_idents(pattern)
        .into_iter()
        .map(|name| Binding {
            name,
            class,
            line: acc.line,
            scope_end: if acc.depth == 0 { total } else { 0 },
            dropped_at: None,
            depth: acc.depth,
        })
        .collect()
}

/// Splits a `let` statement's text (after the `let` keyword) into
/// pattern and initializer at the first standalone `=`.
fn split_let(text: &str) -> (&str, &str) {
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'=' {
            continue;
        }
        let prev = if i == 0 { b' ' } else { bytes[i - 1] };
        let next = *bytes.get(i + 1).unwrap_or(&b' ');
        if next == b'=' || next == b'>' {
            continue;
        }
        if matches!(
            prev,
            b'=' | b'<' | b'>' | b'!' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
        ) {
            continue;
        }
        return (&text[..i], &text[i + 1..]);
    }
    (text, "")
}

/// Identifiers bound by a `let` pattern: lower-case idents, skipping
/// keywords, `_`, and capitalized constructor/type names.
fn pattern_idents(pattern: &str) -> Vec<String> {
    let mut out = Vec::new();
    // Anything after a `:` is a type annotation, not a binding.
    let pattern = pattern.split(':').next().unwrap_or(pattern);
    for word in pattern.split(|c: char| !is_ident_char(c)) {
        if word.is_empty() || word == "_" {
            continue;
        }
        if matches!(word, "mut" | "ref" | "box") {
            continue;
        }
        let starts_lower = word
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_');
        if starts_lower && !out.contains(&word.to_string()) {
            out.push(word.to_string());
        }
    }
    out
}

/// Tokens that prove the statement already went through the sanctioned
/// RFC 1982 helpers (or widened out of the wrapping domain), so its
/// result is a plain integer, not a serial number.
const SERIAL_LAUNDER: &[&str] = &[
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "distance_from",
    "newer_or_equal",
    "u64::from",
    "u32::from",
    "usize::from",
    "i64::from",
    "i32::from",
    "f64::from",
];

/// Tokens whose presence in an initializer marks the bound value as a
/// wrapping serial number.
const SERIAL_SOURCES: &[&str] = &["Seq16", ".raw()", ".stamp()", ".seq()"];

/// Classifies a `let` initializer.
fn classify_init(init: &str, annotated_serial: bool, live: &[Binding]) -> BindingClass {
    if init.contains(".lock()") || init.contains("lock_unpoisoned(") {
        return BindingClass::Guard;
    }
    if SERIAL_LAUNDER.iter().any(|t| init.contains(t)) {
        return BindingClass::Plain;
    }
    if annotated_serial || SERIAL_SOURCES.iter().any(|t| init.contains(t)) {
        return BindingClass::Serial;
    }
    // Flow propagation: initializing from a live serial binding keeps
    // the serial taint unless a laundering helper intervened (above).
    for b in live {
        if b.class == BindingClass::Serial && b.scope_end == 0 && word_in(init, &b.name) {
            return BindingClass::Serial;
        }
    }
    BindingClass::Plain
}

/// Names passed to a `drop(..)` call on this line.
fn dropped_names(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find("drop(") {
        let pos = from + rel;
        let bounded = !code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| is_ident_char(c) && c != ':');
        if bounded {
            let inner = &code[pos + "drop(".len()..];
            if let Some(close) = inner.find(')') {
                let name = inner[..close].trim();
                if !name.is_empty() && name.chars().all(is_ident_char) {
                    out.push(name.to_string());
                }
            }
        }
        from = pos + "drop(".len();
    }
    out
}

/// Recognizes an item header on a trimmed code line.
fn item_header(trim: &str) -> Option<(ItemKind, String)> {
    let mut rest = trim;
    // Strip visibility and qualifiers.
    loop {
        if let Some(r) = rest.strip_prefix("pub") {
            // `pub`, `pub(crate)`, `pub(super)`, `pub(in …)`.
            let r = r.trim_start();
            if let Some(paren) = r.strip_prefix('(') {
                match paren.find(')') {
                    Some(close) => rest = paren[close + 1..].trim_start(),
                    None => return None,
                }
            } else if r.len() < rest.len() {
                rest = r;
            } else {
                return None;
            }
            continue;
        }
        let mut stripped = false;
        for q in ["unsafe ", "async ", "extern \"C\" ", "default "] {
            if let Some(r) = rest.strip_prefix(q) {
                rest = r.trim_start();
                stripped = true;
            }
        }
        if !stripped {
            break;
        }
    }
    if let Some(r) = rest.strip_prefix("const fn ") {
        return Some((ItemKind::Fn, first_ident(r)?));
    }
    if let Some(r) = rest.strip_prefix("fn ") {
        return Some((ItemKind::Fn, first_ident(r)?));
    }
    if rest == "impl" || rest.starts_with("impl ") || rest.starts_with("impl<") {
        let header = rest
            .trim_start_matches("impl")
            .trim()
            .trim_end_matches('{')
            .trim();
        return Some((ItemKind::Impl, header.to_string()));
    }
    if let Some(r) = rest.strip_prefix("mod ") {
        return Some((ItemKind::Mod, first_ident(r)?));
    }
    if let Some(r) = rest.strip_prefix("use ") {
        let path = r.split([';', '{']).next().unwrap_or("").trim().to_string();
        return Some((ItemKind::Use, path));
    }
    if let Some(r) = rest.strip_prefix("struct ") {
        return Some((ItemKind::Struct, first_ident(r)?));
    }
    if let Some(r) = rest.strip_prefix("enum ") {
        return Some((ItemKind::Enum, first_ident(r)?));
    }
    if let Some(r) = rest.strip_prefix("trait ") {
        return Some((ItemKind::Trait, first_ident(r)?));
    }
    if let Some(r) = rest.strip_prefix("const ") {
        return Some((ItemKind::Const, first_ident(r)?));
    }
    if let Some(r) = rest.strip_prefix("static ") {
        let r = r.strip_prefix("mut ").unwrap_or(r);
        return Some((ItemKind::Static, first_ident(r)?));
    }
    if let Some(r) = rest.strip_prefix("type ") {
        return Some((ItemKind::TypeAlias, first_ident(r)?));
    }
    None
}

/// Leading identifier of `s`, if any.
fn first_ident(s: &str) -> Option<String> {
    let s = s.trim_start();
    let end = s
        .char_indices()
        .find(|(_, c)| !is_ident_char(*c))
        .map_or(s.len(), |(i, _)| i);
    if end == 0 {
        None
    } else {
        Some(s[..end].to_string())
    }
}

/// Is `c` a character that can start an identifier?
fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Is `c` an identifier character?
pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Does `text` contain `word` as a word-bounded token?
fn word_in(text: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = text[from..].find(word) {
        let pos = from + rel;
        let before = text[..pos].chars().next_back();
        let after = text[pos + word.len()..].chars().next();
        if !before.is_some_and(is_ident_char) && !after.is_some_and(is_ident_char) {
            return true;
        }
        from = pos + word.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_block_comments_stay_comments() {
        let text = "/* outer /* inner .unwrap() */ still comment */ fn f() {}\n";
        let parsed = parse_file(text);
        assert!(!parsed.lines[0].code.contains("unwrap"));
        assert!(parsed.lines[0].code.contains("fn f()"));
        assert_eq!(parsed.items.len(), 1);
        assert_eq!(parsed.items[0].kind, ItemKind::Fn);
    }

    #[test]
    fn nested_block_comment_across_lines() {
        let text = "/* a /* b */\nstill comment .unwrap() */\nfn g() {}\n";
        let parsed = parse_file(text);
        assert!(!parsed.lines[1].code.contains("unwrap"));
        assert_eq!(parsed.items.len(), 1);
        assert_eq!(parsed.items[0].name, "g");
    }

    #[test]
    fn items_get_names_and_end_lines() {
        let text = concat!(
            "use std::fmt;\n",
            "pub struct S { x: u32 }\n",
            "impl S {\n",
            "    pub fn get(&self) -> u32 {\n",
            "        self.x\n",
            "    }\n",
            "}\n",
            "mod helpers;\n",
        );
        let parsed = parse_file(text);
        let kinds: Vec<(ItemKind, &str, usize, usize)> = parsed
            .items
            .iter()
            .map(|i| (i.kind, i.name.as_str(), i.line, i.end_line))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (ItemKind::Use, "std::fmt", 1, 1),
                (ItemKind::Struct, "S", 2, 2),
                (ItemKind::Impl, "S", 3, 7),
                (ItemKind::Fn, "get", 4, 6),
                (ItemKind::Mod, "helpers", 8, 8),
            ]
        );
    }

    #[test]
    fn guard_binding_lifetime_tracked() {
        let text = concat!(
            "fn f(m: &std::sync::Mutex<u32>) {\n",
            "    let guard = m.lock();\n",
            "    work();\n",
            "    drop(guard);\n",
            "    more();\n",
            "}\n",
        );
        let parsed = parse_file(text);
        assert_eq!(parsed.bindings.len(), 1);
        let b = &parsed.bindings[0];
        assert_eq!(b.name, "guard");
        assert_eq!(b.class, BindingClass::Guard);
        assert_eq!(b.line, 2);
        assert_eq!(b.scope_end, 6);
        assert_eq!(b.dropped_at, Some(4));
        assert!(b.live_across(3));
        assert!(!b.live_across(5));
    }

    #[test]
    fn serial_classification_and_laundering() {
        let text = concat!(
            "fn f(record: &Record, seq: Seq16) {\n",
            "    let stamp = record.stamp();\n",
            "    let tainted = stamp;\n",
            "    let clean = u64::from(stamp.wrapping_sub(prev));\n",
            "    let annotated: Seq16 = next();\n",
            "}\n",
        );
        let parsed = parse_file(text);
        let classes: Vec<(&str, BindingClass)> = parsed
            .bindings
            .iter()
            .map(|b| (b.name.as_str(), b.class))
            .collect();
        assert_eq!(
            classes,
            vec![
                ("stamp", BindingClass::Serial),
                ("tainted", BindingClass::Serial),
                ("clean", BindingClass::Plain),
                ("annotated", BindingClass::Serial),
            ]
        );
    }

    #[test]
    fn multiline_let_is_accumulated() {
        let text = concat!(
            "fn f(m: &std::sync::Mutex<u32>) {\n",
            "    let guard = m\n",
            "        .lock();\n",
            "    use_it(&guard);\n",
            "}\n",
        );
        let parsed = parse_file(text);
        assert_eq!(parsed.bindings.len(), 1);
        assert_eq!(parsed.bindings[0].class, BindingClass::Guard);
        assert_eq!(parsed.bindings[0].line, 2);
    }

    #[test]
    fn cfg_test_regions_marked() {
        let text = concat!(
            "pub fn ok() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() {}\n",
            "}\n",
            "pub fn after() {}\n",
        );
        let parsed = parse_file(text);
        assert!(!parsed.in_test[0]);
        assert!(parsed.in_test[3]);
        assert!(!parsed.in_test[5]);
    }

    #[test]
    fn tuple_patterns_bind_all_lowercase_idents() {
        let text = "fn f() { let (a, b) = pair(); let Some(c) = opt else { return }; }\n";
        let parsed = parse_file(text);
        let names: Vec<&str> = parsed.bindings.iter().map(|b| b.name.as_str()).collect();
        // The second `let` is inside the same line after the first
        // completed; the parser picks it up as its own statement.
        assert!(names.contains(&"a"));
        assert!(names.contains(&"b"));
    }

    #[test]
    fn parse_is_total_and_deterministic_on_junk() {
        let junk = "}}}{{{ let = = ; fn 'a\" r#\" /* /* */ '{' ";
        let a = parse_file(junk);
        let b = parse_file(junk);
        assert_eq!(a, b);
    }

    #[test]
    fn raw_string_fences_survive_round_trip() {
        let text = "fn f() -> &'static str {\n    r##\"text \"# .unwrap() \"##\n}\n";
        let parsed = parse_file(text);
        assert!(!parsed.lines[1].code.contains("unwrap"));
    }
}
