//! The incremental scan cache: per-file results keyed by (content
//! hash, rule-set version), persisted under `target/lint-cache/`.
//!
//! Every rule the scanner runs is a *per-file* judgment (path scope,
//! parse, pragma bookkeeping all live inside one file), so caching per
//! file is sound: an unchanged file re-yields its previous diagnostics
//! and symbol-index rows without being re-read by the parser. The key
//! includes [`RULES_VERSION`] so a rule change invalidates everything
//! at once — a stale cache can never hide a new rule's findings.
//!
//! The cache is strictly best-effort. Any load problem (missing file,
//! parse error, version mismatch, malformed entry) yields an empty
//! cache, and a save failure is ignored: correctness never depends on
//! the cache existing, only speed does.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::json::{self, JsonValue};
use crate::json_escape;
use crate::parse::{Item, ItemKind};
use crate::rules::{Rule, RULES_VERSION};
use crate::Diagnostic;

/// FNV-1a 64-bit content hash — stable across platforms and runs,
/// dependency-free, and fast enough to be negligible next to I/O.
pub fn content_hash(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Cache accounting for one scan, surfaced in the JSON report and
/// asserted by CI's warm-run check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Was the cache consulted at all (`--no-cache` turns this off)?
    pub enabled: bool,
    /// Files whose cached entry matched (hash and rules version).
    pub hits: usize,
    /// Files that had to be parsed and scanned.
    pub misses: usize,
}

/// One file's cached scan result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// FNV-1a hash of the file content when it was scanned.
    pub hash: u64,
    /// The diagnostics the scan produced.
    pub diags: Vec<Diagnostic>,
    /// Items recovered by the parser (feeds the symbol index on warm
    /// runs without re-parsing).
    pub items: Vec<Item>,
    /// How many `let` bindings the parser recovered (index stats).
    pub bindings: usize,
}

/// The on-disk cache: path → entry, plus the rule-set version it was
/// written under.
#[derive(Debug, Default)]
pub struct ScanCache {
    entries: BTreeMap<String, CacheEntry>,
    dirty: bool,
}

/// Where the cache lives relative to the workspace root.
fn cache_path(root: &Path) -> PathBuf {
    root.join("target").join("lint-cache").join("cache.json")
}

impl ScanCache {
    /// Loads the cache for `root`. Any problem — missing file, parse
    /// failure, rule-set version mismatch, malformed entry — yields an
    /// empty cache, never an error.
    pub fn load(root: &Path) -> ScanCache {
        let Ok(text) = std::fs::read_to_string(cache_path(root)) else {
            return ScanCache::default();
        };
        let Ok(doc) = json::parse(&text) else {
            return ScanCache::default();
        };
        if doc.get("rules_version").and_then(JsonValue::as_usize) != Some(RULES_VERSION as usize) {
            return ScanCache::default();
        }
        let Some(entries) = doc.get("entries").and_then(JsonValue::as_obj) else {
            return ScanCache::default();
        };
        let mut out = ScanCache::default();
        for (path, v) in entries {
            let Some(entry) = decode_entry(path, v) else {
                // One bad entry poisons the whole file: a truncated
                // write must not half-apply.
                return ScanCache::default();
            };
            out.entries.insert(path.clone(), entry);
        }
        out
    }

    /// The cached entry for `path`, if its hash still matches.
    pub fn get(&self, path: &str, hash: u64) -> Option<&CacheEntry> {
        self.entries.get(path).filter(|e| e.hash == hash)
    }

    /// Records a freshly scanned file.
    pub fn put(&mut self, path: &str, entry: CacheEntry) {
        self.entries.insert(path.to_string(), entry);
        self.dirty = true;
    }

    /// Persists the cache (best-effort: failures are swallowed).
    /// Writes to a temporary sibling then renames, so a crashed run
    /// leaves either the old cache or the new one, never a torn file.
    pub fn save(&self, root: &Path) {
        if !self.dirty {
            return;
        }
        let path = cache_path(root);
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join("cache.json.tmp");
        if std::fs::write(&tmp, self.encode()).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    /// Serializes the cache to its JSON document.
    fn encode(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"rules_version\": {RULES_VERSION},\n"));
        out.push_str("  \"entries\": {\n");
        let n = self.entries.len();
        for (i, (path, e)) in self.entries.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {{\n", json_escape(path)));
            out.push_str(&format!("      \"hash\": \"{:016x}\",\n", e.hash));
            out.push_str(&format!("      \"bindings\": {},\n", e.bindings));
            out.push_str("      \"items\": [");
            for (j, item) in e.items.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"kind\": \"{}\", \"name\": \"{}\", \"line\": {}, \"end\": {}}}",
                    item.kind.name(),
                    json_escape(&item.name),
                    item.line,
                    item.end_line
                ));
            }
            out.push_str("],\n");
            out.push_str("      \"diags\": [");
            for (j, d) in e.diags.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \
                     \"snippet\": \"{}\"}}",
                    d.line,
                    d.rule.name(),
                    json_escape(&d.message),
                    json_escape(&d.snippet)
                ));
            }
            out.push_str("]\n");
            out.push_str(if i + 1 == n { "    }\n" } else { "    },\n" });
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Decodes one cache entry; `None` on any malformation.
fn decode_entry(path: &str, v: &JsonValue) -> Option<CacheEntry> {
    let hash_hex = v.get("hash")?.as_str()?;
    if hash_hex.len() != 16 {
        return None;
    }
    let hash = u64::from_str_radix(hash_hex, 16).ok()?;
    let bindings = v.get("bindings")?.as_usize()?;
    let mut items = Vec::new();
    for iv in v.get("items")?.as_arr()? {
        items.push(Item {
            kind: ItemKind::from_name(iv.get("kind")?.as_str()?)?,
            name: iv.get("name")?.as_str()?.to_string(),
            line: iv.get("line")?.as_usize()?,
            end_line: iv.get("end")?.as_usize()?,
        });
    }
    let mut diags = Vec::new();
    for dv in v.get("diags")?.as_arr()? {
        diags.push(Diagnostic {
            file: path.to_string(),
            line: dv.get("line")?.as_usize()?,
            rule: Rule::from_name(dv.get("rule")?.as_str()?)?,
            message: dv.get("message")?.as_str()?.to_string(),
            snippet: dv.get("snippet")?.as_str()?.to_string(),
        });
    }
    Some(CacheEntry {
        hash,
        diags,
        items,
        bindings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> CacheEntry {
        CacheEntry {
            hash: content_hash("fn f() {}\n"),
            diags: vec![Diagnostic {
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                rule: Rule::PanicHygiene,
                message: "a \"quoted\" message".to_string(),
                snippet: "x.unwrap()".to_string(),
            }],
            items: vec![Item {
                kind: ItemKind::Fn,
                name: "f".to_string(),
                line: 1,
                end_line: 1,
            }],
            bindings: 2,
        }
    }

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        assert_eq!(content_hash("abc"), content_hash("abc"));
        assert_ne!(content_hash("abc"), content_hash("abd"));
        // The FNV-1a reference value for the empty string.
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn cache_round_trips_through_disk() {
        let root = std::env::temp_dir().join(format!(
            "lint-cache-test-{}-{:x}",
            std::process::id(),
            content_hash("round-trip")
        ));
        std::fs::create_dir_all(&root).expect("temp root");
        let mut cache = ScanCache::default();
        cache.put("crates/x/src/lib.rs", sample_entry());
        cache.save(&root);

        let loaded = ScanCache::load(&root);
        let entry = loaded
            .get("crates/x/src/lib.rs", content_hash("fn f() {}\n"))
            .expect("entry must round-trip");
        assert_eq!(*entry, sample_entry());
        // A different hash (changed file) must miss.
        assert!(loaded.get("crates/x/src/lib.rs", 1).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_or_corrupt_cache_loads_empty() {
        let root = std::env::temp_dir().join(format!(
            "lint-cache-test-{}-{:x}",
            std::process::id(),
            content_hash("corrupt")
        ));
        // Missing entirely.
        let cache = ScanCache::load(&root);
        assert!(cache.get("anything", 0).is_none());
        // Corrupt JSON.
        let dir = root.join("target").join("lint-cache");
        std::fs::create_dir_all(&dir).expect("cache dir");
        std::fs::write(dir.join("cache.json"), "{ not json").expect("write");
        assert!(ScanCache::load(&root).get("anything", 0).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rules_version_mismatch_invalidates_everything() {
        let root = std::env::temp_dir().join(format!(
            "lint-cache-test-{}-{:x}",
            std::process::id(),
            content_hash("version")
        ));
        let dir = root.join("target").join("lint-cache");
        std::fs::create_dir_all(&dir).expect("cache dir");
        let mut cache = ScanCache::default();
        cache.put("crates/x/src/lib.rs", sample_entry());
        let stale = cache.encode().replace(
            &format!("\"rules_version\": {RULES_VERSION}"),
            "\"rules_version\": 1",
        );
        std::fs::write(dir.join("cache.json"), stale).expect("write");
        let loaded = ScanCache::load(&root);
        assert!(
            loaded
                .get("crates/x/src/lib.rs", content_hash("fn f() {}\n"))
                .is_none(),
            "an old rules_version must invalidate the cache"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
