//@ path: crates/eval/src/good_pragma.rs

// A correctly justified suppression scans clean: the pragma names a
// known rule and carries a reason.

pub fn timed() -> f64 {
    // lint:allow(wall-clock) timing is the measured quantity here, not an input
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn trailing() -> u32 {
    Some(1u32).unwrap() // lint:allow(panic-hygiene) literal Some can never be None
}
