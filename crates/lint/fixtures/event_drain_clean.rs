//@ path: crates/eval/src/experiments/good_poll.rs

// The replacement idioms: a sink visit (no allocation) and the
// `_into` scratch-buffer forms (caller-owned, reused across ticks).
// None of these carry the forbidden bare drain tokens. Inside
// `crates/core` itself the legacy names remain legal — that is where
// the compatibility shims live.

pub fn count_selections(dev: &mut distscroll_core::device::DistScrollDevice) -> usize {
    let mut n = 0usize;
    dev.poll_events(&mut |_e: &distscroll_core::events::TimedEvent| n += 1);
    n
}

pub fn refill(
    dev: &mut distscroll_core::device::DistScrollDevice,
    events: &mut Vec<distscroll_core::events::TimedEvent>,
    frames: &mut Vec<distscroll_hw::board::Telemetry>,
) {
    dev.drain_events_into(events);
    dev.drain_telemetry_into(frames);
}
