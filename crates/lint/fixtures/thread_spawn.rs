//@ path: crates/host/src/bad_thread.rs
//@ expect: thread-discipline@6
//@ expect: thread-discipline@9

pub fn fan_out() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
    let out: Vec<i32> = Vec::new();
    rayon::scope(|_| {});
    drop(out);
}
