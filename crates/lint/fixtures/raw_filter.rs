//@ path: crates/core/src/firmware.rs
//@ expect: raw-filter@8
//@ expect: raw-filter@9

// Firmware wiring the distance-processing stages by hand: the chain
// escapes the recognizer's cycle and RAM budgets.
fn hand_wired_chain() {
    let median = MedianFilter::new(9);
    let ema = Ema::new(0.45);
    let _ = (median, ema);
    // lint:allow(raw-filter) standby engine smooths the accel channel, not scroll input
    let accel_ema = Ema::new(0.2);
    let _ = accel_ema;
}
