//@ path: crates/eval/src/stale_pragma.rs
//@ expect: unused-pragma@9
//@ expect: unused-pragma@14

// Pragmas whose violation was fixed (or never existed) are themselves
// errors: a suppression that suppresses nothing is rot waiting to hide
// the next real finding.

// lint:allow(panic-hygiene) this used to unwrap before the Result refactor
pub fn no_longer_panics() -> u32 {
    7
}

pub fn trailing_stale() -> u32 { 8 } // lint:allow(wall-clock) no clock read here any more
