//@ path: crates/host/src/frontier_ok.rs

// The sanctioned RFC 1982 shapes: wrapping_sub against a half-window
// horizon, distance_from / newer_or_equal, or widening out of the
// wrapping domain before arithmetic. Seq16 in type position (generics,
// annotations) is not an operand.

use distscroll_hw::arq::Seq16;

const SERIAL_HALF: u64 = 32_768;

fn is_stale(record_stamp: Seq16, front: Seq16) -> bool {
    let stamp = record_stamp;
    let delta = u64::from(stamp.wrapping_sub(front).raw());
    delta < SERIAL_HALF
}

fn ordered(a: Seq16, b: Seq16) -> bool {
    a.newer_or_equal(b)
}

fn gap(a: Seq16, b: Seq16) -> u16 {
    a.distance_from(b)
}

fn buffer_len(window: &[Seq16]) -> usize {
    window.len() + 1
}
