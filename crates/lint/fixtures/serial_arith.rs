//@ path: crates/host/src/frontier.rs
//@ expect: serial-arith@15
//@ expect: serial-arith@19
//@ expect: serial-arith@23
//@ expect: serial-arith@29

// Raw integer arithmetic on wrapping serial numbers — the PR 5
// SessionLog bug class. A backwards jump under 32768 is reordering,
// not a wrap, so `<` on raw stamps misorders exactly at the seam.

use distscroll_hw::arq::Seq16;

fn is_stale(record_stamp: Seq16, front: Seq16) -> bool {
    let stamp = record_stamp.raw();
    stamp < front.raw()
}

fn next_expected(seq: Seq16) -> u16 {
    seq.raw() + 1
}

fn window_cursor(last: u16, frame_seq: Seq16) -> bool {
    last > frame_seq.raw()
}

fn tainted_flow(record_stamp: Seq16) -> u16 {
    let stamp = record_stamp.raw();
    let shifted = stamp;
    shifted - 3
}
