//@ path: crates/core/src/bad_unsafe.rs
//@ expect: unsafe-audit@6

pub fn read(p: *const u8) -> u8 {
    // SAFETY: a justification does not move a module onto the allowlist.
    unsafe { *p }
}
