//@ path: crates/eval/src/experiments/arq_helper.rs
//@ expect: raw-seq@9

// A harness tempted to fabricate its own ARQ sequence numbers instead
// of taking them from decode_data/decode_ack. Serial-number arithmetic
// lives in crates/hw; hand-built sequence state drifts from it.

fn resume_from(counter: u16) -> distscroll_hw::arq::Seq16 {
    distscroll_hw::arq::Seq16::from_raw(counter.wrapping_add(1))
}
