//@ path: crates/core/src/bad_rng.rs
//@ expect: ambient-rng@5

pub fn roll() -> u32 {
    let mut rng = rand::thread_rng();
    rng.next_u32()
}
