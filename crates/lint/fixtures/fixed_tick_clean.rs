//@ path: crates/eval/src/experiments/tick_driver_ok.rs

// Sanctioned forms: driving time through the device's event-core
// dispatch, a pragma'd stepping site, and test-rig stepping inside a
// #[cfg(test)] region.

fn drive(dev: &mut distscroll_core::device::DistScrollDevice) -> Result<(), CoreError> {
    dev.run_until(dev.now() + distscroll_hw::clock::SimDuration::from_secs(2))
}

fn sanctioned(board: &mut distscroll_hw::board::Board) {
    // lint:allow(fixed-tick) this harness is the sanctioned dispatch site for its fixture board
    board.step(distscroll_hw::clock::SimDuration::from_millis(10));
}

#[cfg(test)]
mod tests {
    #[test]
    fn rig_steps_manually() {
        let mut board = distscroll_hw::board::Board::new();
        board.step(distscroll_hw::clock::SimDuration::from_millis(10));
    }
}
