//@ path: crates/core/src/good_tests.rs

// Library code with a #[cfg(test)] module: unwraps inside the test
// module are exempt from panic-hygiene, exactly like `cargo test`
// code under tests/.

pub fn double(x: u32) -> Option<u32> {
    x.checked_mul(2)
}

#[cfg(test)]
mod tests {
    use super::double;

    #[test]
    fn doubles() {
        assert_eq!(double(2).unwrap(), 4);
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
