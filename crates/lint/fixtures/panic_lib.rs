//@ path: crates/baselines/src/bad_panic.rs
//@ expect: panic-hygiene@6
//@ expect: panic-hygiene@10
//@ expect: panic-hygiene@14
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn checked(xs: &[u32]) -> u32 {
    *xs.first().expect("xs is never empty")
}

pub fn reject() -> ! {
    panic!("library code must fail through Result instead")
}
