//@ path: crates/ingest/src/batcher_ok.rs

// The two sanctioned shapes: drop the guard before fanning out, or
// take the lock inside the worker closure (a temporary that never
// spans the fan-out).

use std::sync::Mutex;

fn flush(stats: &Mutex<u64>, jobs: &[u32]) {
    let guard = stats.lock();
    let base = *guard;
    drop(guard);
    let totals = distscroll_par::par_map(jobs, &base, |b, j| *b + u64::from(*j));
    let _ = totals;
}

fn flush_per_worker(shards: &[Mutex<u64>], jobs: &[u32]) {
    distscroll_par::par_map(jobs, shards, |shards, j| {
        *lock_unpoisoned(&shards[*j as usize]) += 1;
    });
}
