//@ path: crates/par/src/pool.rs
//@ expect: unsafe-audit@7

pub fn read(p: *const u8) -> u8 {
    // A comment that is not a safety justification does not count:
    // this dereference is probably fine.
    unsafe { *p }
}
