//@ path: crates/eval/src/live_pragma.rs

// Every pragma here suppresses a real diagnostic, so none is stale:
// the unused-pragma rule stays quiet.

pub fn timed() -> f64 {
    // lint:allow(wall-clock) timing is the measured quantity here, not an input
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn trailing() -> u32 {
    Some(1u32).unwrap() // lint:allow(panic-hygiene) literal Some can never be None
}
