//@ path: crates/ingest/src/shard.rs

// The shard registry is the sanctioned construction site: a session
// opened here lives in exactly one shard's books.
fn open_session() -> StreamDecoder {
    StreamDecoder::with_arq_resync()
}
