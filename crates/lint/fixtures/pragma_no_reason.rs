//@ path: crates/core/src/bad_pragma.rs
//@ expect: bad-pragma@7
//@ expect: panic-hygiene@7
//@ expect: bad-pragma@10

pub fn f() -> u32 {
    Some(1u32).unwrap() // lint:allow(panic-hygiene)
}

// lint:allow(no-such-rule) the rule name must be a known rule id
pub fn g() -> u32 {
    2
}
