//@ path: crates/eval/src/experiments/tick_driver.rs
//@ expect: fixed-tick@11
//@ expect: fixed-tick@12
//@ expect: fixed-tick@13
//@ expect: fixed-tick@14

// A harness grinding the simulation forward tick by tick instead of
// registering deadlines with the event scheduler.

fn drive(board: &mut distscroll_hw::board::Board, clock: &mut distscroll_hw::clock::SimClock) {
    board.step(distscroll_hw::clock::SimDuration::from_millis(10));
    board.step_recount(distscroll_hw::clock::SimDuration::from_millis(10));
    clock.advance(distscroll_hw::clock::SimDuration::from_millis(10));
    clock.advance_to(distscroll_hw::clock::SimInstant::from_micros(20_000));
}
