//@ path: crates/ingest/src/batcher.rs
//@ expect: guard-across-fanout@13
//@ expect: guard-across-fanout@20

// Holding a mutex guard across a par_map fan-out: workers contending
// on the guard while the caller holds a pool token is the deadlock
// shape the global --jobs budget makes real.

use std::sync::Mutex;

fn flush(stats: &Mutex<u64>, jobs: &[u32]) {
    let guard = stats.lock();
    let totals = distscroll_par::par_map(jobs, &(), |_, j| u64::from(*j));
    drop(guard);
    let _ = totals;
}

fn flush_unpoisoned(stats: &Mutex<u64>, jobs: &[u32]) {
    let guard = lock_unpoisoned(stats);
    let totals = distscroll_par::par_map_ctx(jobs, &(), |_, _, j| u64::from(*j));
    drop(guard);
    let _ = totals;
}
