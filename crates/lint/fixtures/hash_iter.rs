//@ path: crates/eval/src/bad_map.rs
//@ expect: unordered-iter@5
//@ expect: unordered-iter@7

use std::collections::HashMap;

pub fn render(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in counts {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
