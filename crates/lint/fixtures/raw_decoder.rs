//@ path: crates/ingest/src/service.rs
//@ expect: raw-decoder@7

// A fleet session opened outside the shard registry: the decoder's
// counters escape the shard's books.
fn rogue_session() {
    let rogue = StreamDecoder::with_arq_resync();
    let _ = rogue;
    // lint:allow(raw-decoder) capture-time ground truth, outside any shard's books
    let sanctioned = StreamDecoder::with_arq();
    let _ = sanctioned;
}
