//@ path: crates/eval/src/bad_clock.rs
//@ expect: wall-clock@6
//@ expect: wall-clock@7

pub fn stamp() -> u64 {
    let _t0 = std::time::Instant::now();
    let _wall = std::time::SystemTime::now();
    0
}
