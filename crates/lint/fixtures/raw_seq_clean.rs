//@ path: crates/hw/src/arq_helper.rs

// The same construction inside crates/hw is the sanctioned one: the
// arq module is where raw wire integers become sequence numbers.

fn seq_of(raw: u16) -> crate::arq::Seq16 {
    crate::arq::Seq16::from_raw(raw)
}
