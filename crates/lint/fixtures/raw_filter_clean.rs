//@ path: crates/recognizer/src/classic.rs

// The recognizer crate is the sanctioned construction site: stages
// built here are counted against the chain's cycle and RAM budgets.
fn build_stages() -> (MedianFilter, Ema, SlewGate) {
    (
        MedianFilter::new(9),
        Ema::new(0.45),
        SlewGate::new(120.0, 4),
    )
}
