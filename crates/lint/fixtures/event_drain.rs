//@ path: crates/eval/src/experiments/bad_drain.rs
//@ expect: event-drain@9
//@ expect: event-drain@13

// The legacy owned-Vec poll allocates a fresh Vec per tick — exactly
// the hot path the sink API exists to keep allocation-free.

pub fn count_selections(dev: &mut distscroll_core::device::DistScrollDevice) -> usize {
    dev.drain_events().len()
}

pub fn frame_count(dev: &mut distscroll_core::device::DistScrollDevice) -> usize {
    dev.drain_telemetry().len()
}
