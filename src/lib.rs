//! Facade crate for the DistScroll reproduction.
//!
//! Re-exports every subcrate of the workspace under one roof so examples
//! and downstream users can depend on a single crate:
//!
//! * [`hw`] — the simulated Smart-Its hardware platform,
//! * [`sensors`] — sensor physics (GP2D120, ADXL311), filters, calibration,
//! * [`core`] — the DistScroll technique: island mapping, menus, firmware,
//! * [`user`] — the synthetic human motor model,
//! * [`baselines`] — comparison scrolling techniques,
//! * [`eval`] — the experiment harness reproducing the paper's figures,
//! * [`host`] — the PC side of the wireless link: telemetry decoding,
//!   session logs and trajectory replay.
//!
//! See the README for a tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use distscroll_baselines as baselines;
pub use distscroll_core as core;
pub use distscroll_eval as eval;
pub use distscroll_host as host;
pub use distscroll_hw as hw;
pub use distscroll_sensors as sensors;
pub use distscroll_user as user;
