//! The experimenter's PC: log a live session over the wireless link and
//! reconstruct what the participant did.
//!
//! ```text
//! cargo run --example host_logger
//! ```
//!
//! The authors' prototype was "wirelessly linked to a PC" (Section 3.2);
//! this is that PC. A synthetic participant performs a few selections;
//! the host decodes the radio stream, segments it into selections and
//! replays the hand trajectory.

use distscroll::core::device::DistScrollDevice;
use distscroll::core::mapping::paper_curve;
use distscroll::core::phone_menu::phone_menu;
use distscroll::core::profile::DeviceProfile;
use distscroll::host::replay::Trajectory;
use distscroll::host::session::SessionLog;
use distscroll::host::telemetry::StreamDecoder;
use distscroll::hw::board::Telemetry;
use distscroll::user::population::UserParams;
use distscroll::user::strategy::{DeviceGeometry, PositionAim, UserCommand};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DeviceProfile::paper();
    let mut dev = DistScrollDevice::new(profile.clone(), phone_menu(), 44);
    let mut rng = StdRng::seed_from_u64(44);
    let user = UserParams::expert();
    let mut decoder = StreamDecoder::new();
    let mut log = SessionLog::new();

    println!("host logger — the PC side of the paper's wireless link\n");

    // The participant selects three top-level entries in a row.
    let geometry = DeviceGeometry {
        near_cm: profile.near_cm,
        far_cm: profile.far_cm,
        n_entries: dev.level_len(),
        toward_is_down: true,
    };
    for &target in &[1usize, 5, 3] {
        let mut aim = PositionAim::new(user, geometry, target, dev.distance(), 50, &mut rng);
        let t0 = dev.now();
        loop {
            let t = (dev.now() - t0).as_secs_f64();
            if t > 15.0 {
                break;
            }
            let (pos, cmd) = aim.step(t, dev.highlighted(), &mut rng);
            dev.set_distance(pos);
            match cmd {
                UserCommand::PressSelect => dev.press_select(),
                UserCommand::ReleaseSelect => dev.release_select(),
                UserCommand::None => {}
            }
            dev.tick()?;
            dev.poll_telemetry(&mut |frame: &Telemetry| {
                log.ingest_all(decoder.push_bytes(&frame.bytes));
            });
            if aim.is_done() {
                break;
            }
        }
        // Entered a submenu? Back out for the next trial.
        while dev.level() > 0 {
            dev.click_back()?;
        }
        dev.poll_telemetry(&mut |frame: &Telemetry| {
            log.ingest_all(decoder.push_bytes(&frame.bytes));
        });
    }

    println!(
        "link: {} records decoded, {} crc failures, {} malformed\n",
        decoder.records_ok(),
        decoder.crc_failures(),
        decoder.records_bad()
    );

    println!("reconstructed selections:");
    for (i, s) in log.selections().iter().enumerate() {
        println!(
            "  #{:<2} {:>5.2} s  path through {:>2} entries, {} reversals, landed on {:?}",
            i + 1,
            s.duration_s,
            s.path.len(),
            s.reversals,
            s.selected
        );
    }

    let traj = Trajectory::from_log(&log, &paper_curve(), 0.010);
    println!(
        "\nhand trajectory: {:.1} cm total travel, {:.1} cm/s mean speed, {:.0}% dwelling",
        traj.travel_cm(),
        traj.mean_speed(),
        traj.dwell_fraction(0.15) * 100.0
    );
    println!("\n{}", traj.strip_chart(70, 12));

    println!(
        "csv export: {} rows (first two shown)",
        log.to_csv().lines().count() - 1
    );
    for line in log.to_csv().lines().take(3) {
        println!("  {line}");
    }
    Ok(())
}
