//! Factory calibration: a fresh DistScroll unit (with real part-to-part
//! sensor variation) goes through the jig, gets its own curve fitted and
//! burned into the PIC's data EEPROM, and comes out with unbiased
//! distance estimates.
//!
//! ```text
//! cargo run --example factory_calibration
//! ```

use distscroll::core::device::DistScrollDevice;
use distscroll::core::menu::Menu;
use distscroll::core::profile::DeviceProfile;

fn probe_bias(dev: &mut DistScrollDevice) -> Result<Vec<(f64, f64)>, Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for d in [6.0, 10.0, 14.0, 18.0, 22.0, 26.0] {
        dev.set_distance(d);
        dev.run_for_ms(500)?;
        if let Some(est) = dev.firmware().distance_estimate() {
            rows.push((d, est));
        }
    }
    Ok(rows)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("factory calibration — per-unit GP2D120 curves in EEPROM\n");

    // Serial number 2317 off the line: its sensor has its own gain and
    // offset, a few percent away from the datasheet-typical part.
    let mut unit =
        DistScrollDevice::new_with_unit_variation(DeviceProfile::paper(), Menu::flat(8), 2317);

    println!("before calibration (firmware assumes the datasheet-typical curve):");
    println!("{:>10} {:>12} {:>8}", "true [cm]", "estimate", "error");
    let before = probe_bias(&mut unit)?;
    for (d, est) in &before {
        println!("{d:>10.1} {est:>12.2} {:>+8.2}", est - d);
    }
    let mean_before = before.iter().map(|(d, e)| (e - d).abs()).sum::<f64>() / before.len() as f64;

    println!("\nrunning the jig: reference surface at 7 known positions…");
    unit.calibrate_on_jig(&[5.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0])?;
    let curve = *unit.firmware().curve();
    println!(
        "fitted this unit's curve: V = {:.2}/(d + {:.2}) + {:.3}  -> burned to EEPROM",
        curve.a, curve.d0, curve.c
    );

    println!("\nafter calibration:");
    println!("{:>10} {:>12} {:>8}", "true [cm]", "estimate", "error");
    let after = probe_bias(&mut unit)?;
    for (d, est) in &after {
        println!("{d:>10.1} {est:>12.2} {:>+8.2}", est - d);
    }
    let mean_after = after.iter().map(|(d, e)| (e - d).abs()).sum::<f64>() / after.len() as f64;

    println!("\nmean |error|: {mean_before:.2} cm before -> {mean_after:.2} cm after calibration");
    println!(
        "eeprom record wear so far: {} write cycles (endurance {})",
        unit.board().eeprom.wear(0),
        distscroll::hw::eeprom::ENDURANCE_CYCLES
    );
    Ok(())
}
