//! The Section 5.2 stocktaking scenario: "one hand counts or scans the
//! items and the second hand operates the mobile device to input data on
//! these items" — in a cold warehouse, wearing a thick parka and gloves,
//! where touchscreens and styluses fail but DistScroll does not.
//!
//! ```text
//! cargo run --example glove_stocktaking
//! ```
//!
//! A worker walks a shelf of stock items; for each item the off hand
//! scans while the device hand scrolls a category menu by distance and
//! confirms with the (glove-friendly) thumb button.

use distscroll::core::device::DistScrollDevice;
use distscroll::core::events::{Event, TimedEvent};
use distscroll::core::menu::{Menu, MenuNode};
use distscroll::core::profile::DeviceProfile;
use distscroll::sensors::environment::{AmbientLight, Surface};
use distscroll::user::population::UserParams;
use distscroll::user::strategy::{DeviceGeometry, PositionAim, UserCommand};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The warehouse's category menu.
fn stock_menu() -> Menu {
    Menu::new(MenuNode::submenu(
        "Stock",
        vec![
            MenuNode::leaf("Bolts M4"),
            MenuNode::leaf("Bolts M6"),
            MenuNode::leaf("Nuts M4"),
            MenuNode::leaf("Nuts M6"),
            MenuNode::leaf("Washers"),
            MenuNode::leaf("Anchors"),
            MenuNode::leaf("Screws 3x20"),
            MenuNode::leaf("Screws 4x40"),
        ],
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(52);
    // A practiced warehouse worker; gloves blunt the fingers but the
    // distance gesture is unaffected — only button presses slow a little.
    let mut user = UserParams::expert();
    user.keystroke_s *= 1.3; // gloved thumb
    user.dwell_s *= 1.1;

    let profile = DeviceProfile::paper();
    let mut dev = DistScrollDevice::new(profile.clone(), stock_menu(), 52);
    // Winter kit: dark parka in a dim warehouse.
    dev.set_surface(Surface::DarkParka);
    dev.set_ambient(AmbientLight::Dark);

    println!("glove stocktaking — Section 5.2's first application area\n");
    println!("worker wears a dark parka and thick gloves; dim warehouse light\n");

    let shelf = [
        ("crate of M6 bolts", 1usize),
        ("bag of washers", 4),
        ("box of 3x20 screws", 6),
        ("crate of M4 nuts", 2),
        ("bag of anchors", 5),
        ("box of 4x40 screws", 7),
    ];

    let n = dev.level_len();
    let geometry = DeviceGeometry {
        near_cm: profile.near_cm,
        far_cm: profile.far_cm,
        n_entries: n,
        toward_is_down: true,
    };

    let session_start = dev.now();
    let mut logged = 0;
    for (item, category) in shelf {
        let start_cm = dev.distance();
        let mut aim = PositionAim::new(user, geometry, category, start_cm, 50, &mut rng);
        let t0 = dev.now();
        let mut selected: Option<String> = None;
        while (dev.now() - t0).as_secs_f64() < 20.0 {
            let t = (dev.now() - t0).as_secs_f64();
            let (pos, cmd) = aim.step(t, dev.highlighted(), &mut rng);
            dev.set_distance(pos);
            match cmd {
                UserCommand::PressSelect => dev.press_select(),
                UserCommand::ReleaseSelect => dev.release_select(),
                UserCommand::None => {}
            }
            dev.tick()?;
            dev.poll_events(&mut |ev: &TimedEvent| {
                if let Event::Activated { path } = &ev.event {
                    selected = path.last().cloned();
                }
            });
            if selected.is_some() && aim.is_done() {
                break;
            }
        }
        let took = (dev.now() - t0).as_secs_f64();
        let got = selected.unwrap_or_else(|| "(none)".into());
        let want = stock_menu().root().children()[category].label().to_string();
        let ok = got == want;
        if ok {
            logged += 1;
        }
        println!(
            "scanned {:<20} logged as {:<12} in {:>4.1} s  {}",
            item,
            got,
            took,
            if ok { "ok" } else { "WRONG BIN" }
        );
    }

    let total = (dev.now() - session_start).as_secs_f64();
    println!(
        "\n{} of {} items logged correctly in {:.0} s ({:.1} items/min), one-handed, gloved",
        logged,
        shelf.len(),
        total,
        logged as f64 / total * 60.0
    );
    println!(
        "battery after the shift so far: {:.1}%",
        dev.board().battery_soc() * 100.0
    );
    Ok(())
}
