//! The Section 6 study session: a synthetic novice discovers the device
//! and learns to use the fictive mobile phone menu.
//!
//! ```text
//! cargo run --example phone_menu
//! ```
//!
//! Prints what the participant's displays show during the session and a
//! per-trial log mirroring what the authors' observers noted: prompt
//! discovery, then near-errorless use.

use distscroll::core::device::DistScrollDevice;
use distscroll::core::events::{Event, TimedEvent};
use distscroll::core::phone_menu::phone_menu;
use distscroll::core::profile::DeviceProfile;
use distscroll::user::population::UserParams;
use distscroll::user::strategy::{DeviceGeometry, PositionAim, UserCommand};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(6);
    let user = UserParams::typical(); // a novice with a learning curve
    let profile = DeviceProfile::paper();
    let mut dev = DistScrollDevice::new(profile.clone(), phone_menu(), 6);

    println!("DistScroll initial-study session — one synthetic participant\n");
    println!("task per trial: highlight a requested top-level entry and press select\n");

    let n = dev.level_len();
    let geometry = DeviceGeometry {
        near_cm: profile.near_cm,
        far_cm: profile.far_cm,
        n_entries: n,
        toward_is_down: true,
    };

    let targets = [2usize, 5, 0, 4, 6, 1, 3, 5, 2, 4];
    for (trial, &target) in targets.iter().enumerate() {
        // The experimenter's prompt appears on the lower display, as §6
        // planned ("instructions which items are to be searched").
        let wanted_label = phone_menu().root().children()[target].label().to_string();
        dev.set_instruction(Some(&wanted_label));
        // Each trial starts wherever the hand ended up.
        let start_cm = dev.distance();
        let mut aim =
            PositionAim::new(user, geometry, target, start_cm, trial as u32 + 1, &mut rng);
        let t0 = dev.now();
        let mut outcome: Option<Vec<String>> = None;
        while (dev.now() - t0).as_secs_f64() < 20.0 {
            let t = (dev.now() - t0).as_secs_f64();
            let (pos, cmd) = aim.step(t, dev.highlighted(), &mut rng);
            dev.set_distance(pos);
            match cmd {
                UserCommand::PressSelect => dev.press_select(),
                UserCommand::ReleaseSelect => dev.release_select(),
                UserCommand::None => {}
            }
            dev.tick()?;
            dev.poll_events(&mut |ev: &TimedEvent| {
                if let Event::EnteredSubmenu { label } = &ev.event {
                    outcome = Some(vec![label.clone()]);
                } else if let Event::Activated { path } = &ev.event {
                    outcome = Some(path.clone());
                }
            });
            if outcome.is_some() && aim.is_done() {
                break;
            }
        }
        let wanted = phone_menu().root().children()[target].label().to_string();
        let got = outcome.map_or("(timeout)".to_string(), |p| p.join(" > "));
        let time = (dev.now() - t0).as_secs_f64();
        println!(
            "trial {:>2}: wanted {:<13} got {:<13} in {:>4.1} s  {}",
            trial + 1,
            wanted,
            got,
            time,
            if got.starts_with(&wanted) {
                "ok"
            } else {
                "MISS"
            }
        );
        // Back out if a submenu was entered, so every trial starts at the top.
        while dev.level() > 0 {
            dev.click_back()?;
        }
    }

    dev.set_instruction(None);
    dev.run_for_ms(300)?;
    println!("\nwhat the participant sees at the end of the session:");
    println!("{}", dev.upper_display_art());
    println!("{}", dev.lower_display_art());
    Ok(())
}
