//! A quick run of the Section 7 comparison: DistScroll against buttons,
//! wheel, tilt and the YoYo, on one practiced user.
//!
//! ```text
//! cargo run --release --example technique_shootout
//! ```
//!
//! For the full cohort version with Fitts regressions, run the harness:
//! `cargo run -p distscroll-eval --release -- shootout`.

use distscroll::baselines::{all_techniques, TrialSetup};
use distscroll::user::population::UserParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let user = UserParams::expert();
    let menu = 12;
    let tasks: Vec<TrialSetup> = vec![
        TrialSetup::new(menu, 0, 3, 50),
        TrialSetup::new(menu, 3, 11, 51),
        TrialSetup::new(menu, 11, 10, 52),
        TrialSetup::new(menu, 10, 2, 53),
        TrialSetup::new(menu, 2, 7, 54),
        TrialSetup::new(menu, 7, 0, 55),
    ];

    println!(
        "technique shootout — one practiced user, {menu}-entry menu, {} tasks\n",
        tasks.len()
    );
    println!(
        "{:<12} {:>9} {:>8} {:>12}",
        "technique", "total[s]", "correct", "corrections"
    );
    println!("{}", "-".repeat(44));

    for tech in all_techniques().iter_mut() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut total = 0.0;
        let mut correct = 0;
        let mut corrections = 0;
        for setup in &tasks {
            let r = tech.run_trial(&user, setup, &mut rng);
            total += r.time_s;
            correct += u32::from(r.correct);
            corrections += r.corrections;
        }
        println!(
            "{:<12} {:>9.2} {:>5}/{:<2} {:>12}",
            tech.name(),
            total,
            correct,
            tasks.len(),
            corrections
        );
    }

    println!("\n(the distscroll row runs the full simulated device: IR sensor, ADC,");
    println!(" firmware island mapping, displays — the others are behavioural models)");
}
