//! Quickstart: assemble the simulated DistScroll prototype, scroll the
//! fictive phone menu by moving the device, and select an entry.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example mirrors Figure 1 of the paper: a user scrolls through
//! menu entries by moving the device towards and away from their body;
//! the upper display shows the menu, the lower one shows state
//! information.

use distscroll::core::device::DistScrollDevice;
use distscroll::core::phone_menu::phone_menu;
use distscroll::core::profile::DeviceProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's prototype configuration: 4-30 cm range, island mapping
    // with dead zones, right-handed button layout.
    let mut dev = DistScrollDevice::new(DeviceProfile::paper(), phone_menu(), 2005);

    println!("DistScroll quickstart — the paper's Figure 1, in simulation\n");

    // Hold the device at a few distances and watch the highlight move.
    for cm in [26.0, 17.0, 8.0] {
        dev.set_distance(cm);
        dev.run_for_ms(400)?;
        println!(
            "device at {:>4.1} cm  ->  highlighted: {:?} (entry {} of {})",
            cm,
            dev.highlighted_label(),
            dev.highlighted() + 1,
            dev.level_len()
        );
    }

    // Aim precisely at "Settings" (entry index 4) using the island
    // centre the firmware computed, then click the thumb button.
    let settings_cm = dev.island_center_cm(4).expect("settings exists");
    dev.set_distance(settings_cm);
    dev.run_for_ms(400)?;
    dev.click_select()?;
    println!(
        "\nclicked select at {settings_cm:.1} cm -> entered {:?}",
        dev.firmware().navigator().breadcrumb()
    );

    // What the user sees on the two displays right now:
    println!("\nupper display (menu):\n{}", dev.upper_display_art());
    println!(
        "\nlower display (state information):\n{}",
        dev.lower_display_art()
    );

    // And back out.
    dev.click_back()?;
    println!(
        "\nclicked back -> level {} ({} entries)",
        dev.level(),
        dev.level_len()
    );

    // The device also streamed telemetry to the host over the radio the
    // whole time:
    let mut frames = 0usize;
    dev.poll_telemetry(&mut |_t: &distscroll::hw::board::Telemetry| frames += 1);
    println!("telemetry frames received by the host so far: {frames}");

    Ok(())
}
