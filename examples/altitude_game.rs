//! The Section 5.2 game idea: "any sort of character (e.g. aircraft)
//! staying on a fixed position somewhere on the left side of the display.
//! The altitude of the character is controlled by moving the DistScroll.
//! This is done to avoid obstacles or to collect items. … Firing bullets
//! … can also be simulated using one or more buttons."
//!
//! ```text
//! cargo run --example altitude_game
//! ```
//!
//! The game reads the firmware's *continuous* distance estimate (not the
//! island mapping — games want analog control) and renders ASCII frames.
//! A scripted pilot flies the course; obstacles scroll in from the right.

use distscroll::core::device::DistScrollDevice;
use distscroll::core::menu::Menu;
use distscroll::core::profile::DeviceProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 9;
const COLS: usize = 36;

struct Game {
    plane_row: usize,
    obstacles: Vec<(usize, usize)>, // (col, row)
    score: i64,
    crashes: u32,
}

impl Game {
    fn frame(&self) -> String {
        let mut grid = vec![vec![' '; COLS]; ROWS];
        for &(c, r) in &self.obstacles {
            if c < COLS && r < ROWS {
                grid[r][c] = '#';
            }
        }
        grid[self.plane_row][2] = '>';
        let mut out = String::new();
        out.push_str(&format!("+{}+\n", "-".repeat(COLS)));
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push_str("|\n");
        }
        out.push_str(&format!("+{}+", "-".repeat(COLS)));
        out
    }

    fn step(&mut self, rng: &mut StdRng, tick: usize) {
        for o in &mut self.obstacles {
            o.0 = o.0.wrapping_sub(1);
        }
        self.obstacles.retain(|&(c, _)| c < COLS);
        if tick.is_multiple_of(7) {
            self.obstacles.push((COLS - 1, rng.gen_range(0..ROWS)));
        }
        // Collision at the plane's column?
        if self
            .obstacles
            .iter()
            .any(|&(c, r)| c == 2 && r == self.plane_row)
        {
            self.crashes += 1;
            self.score -= 10;
        } else {
            self.score += 1;
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DeviceProfile::paper();
    // The menu is irrelevant here; the game taps the analog estimate.
    let mut dev = DistScrollDevice::new(profile.clone(), Menu::flat(2), 99);
    let mut rng = StdRng::seed_from_u64(99);
    let mut game = Game {
        plane_row: ROWS / 2,
        obstacles: Vec::new(),
        score: 0,
        crashes: 0,
    };

    println!("altitude game — Section 5.2's third application area");
    println!("(distance from the body = altitude; scripted pilot flies 12 s)\n");

    let span = profile.span_cm();
    let mut shown = 0;
    for tick in 0..120 {
        // Scripted pilot: dodge the nearest obstacle in the plane's lane.
        let threat = game
            .obstacles
            .iter()
            .filter(|&&(c, _)| c > 2 && c < 14)
            .min_by_key(|&&(c, _)| c)
            .copied();
        let desired_row = match threat {
            Some((_, r)) if r == game.plane_row => {
                if r == 0 {
                    r + 2
                } else if r + 1 >= ROWS || r > ROWS / 2 {
                    r - 2
                } else {
                    r + 2
                }
            }
            _ => game.plane_row,
        };
        // Altitude -> hand distance: row 0 (top) = arm extended.
        let u = desired_row as f64 / (ROWS - 1) as f64;
        dev.set_distance(profile.near_cm + (1.0 - u) * span);
        dev.run_for_ms(100)?;

        // The game reads the firmware's analog distance estimate.
        if let Some(d) = dev.firmware().distance_estimate() {
            let u = ((d - profile.near_cm) / span).clamp(0.0, 1.0);
            game.plane_row = ((1.0 - u) * (ROWS - 1) as f64).round() as usize;
        }
        game.step(&mut rng, tick);

        if tick % 30 == 29 && shown < 3 {
            shown += 1;
            println!(
                "t = {:>2} s   score {}   crashes {}",
                (tick + 1) / 10,
                game.score,
                game.crashes
            );
            println!("{}\n", game.frame());
        }
    }

    println!("final score: {}   crashes: {}", game.score, game.crashes);
    println!(
        "the ~{:.0} ms sensor refresh sets the control latency a game must design around",
        distscroll::sensors::gp2d120::SAMPLE_PERIOD_S * 1000.0
    );
    Ok(())
}
