#!/usr/bin/env bash
# Smoke the full experiment suite through the parallel harness.
#
# Runs every experiment at quick effort twice — serial (`--jobs 1`) and
# through the shared pool (`--jobs 4`) — and fails on:
#   (a) a nonzero exit — the CLI exits 1 when any experiment stops
#       holding the paper's shape;
#   (b) a shape regression in the printed summary, checked independently
#       of the exit code so a future CLI bug cannot silently pass the
#       gate;
#   (c) any byte of difference between the serial and parallel report
#       files — the determinism guarantee, asserted here in CI rather
#       than only in-process.
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/expected.sh
. "$(dirname "$0")/expected.sh"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Fast gate first: the registry listing and two single experiments
# through the --only path — the first registered figure and the newest
# link experiment (which exercises the ARQ reverse channel). This
# catches a broken build, a registry mismatch or a CLI regression in
# seconds, before the full matrix spends minutes.
# The lint rule set is part of the repo contract: a rule added without
# updating expected.sh (or silently dropped) fails here, not in review.
cargo run --release -p xtask -- lint --rules > "$workdir/lint_rules.txt"
grep -q "^total: $LINT_RULES rules\$" "$workdir/lint_rules.txt" || {
    echo "smoke: lint --rules should report exactly $LINT_RULES rules, got:" >&2
    tail -n 1 "$workdir/lint_rules.txt" >&2
    exit 1
}

# Wire fuzzing fast gate: replay the checked-in corpus through all three
# targets (no mutation), then a seeded determinism check — two identical
# short runs must print identical per-target summaries. A corpus entry
# that trips an oracle fails here in seconds.
cargo run --release -p xtask -- fuzz --replay > "$workdir/fuzz_replay.txt" || {
    echo "smoke: corpus replay tripped a fuzz oracle:" >&2
    cat "$workdir/fuzz_replay.txt" >&2
    exit 1
}
grep -q "^fuzz: PASS" "$workdir/fuzz_replay.txt" || {
    echo "smoke: fuzz replay did not report PASS" >&2
    exit 1
}
cargo run --release -p xtask -- fuzz --iters 2000 > "$workdir/fuzz_a.txt"
cargo run --release -p xtask -- fuzz --iters 2000 > "$workdir/fuzz_b.txt"
diff "$workdir/fuzz_a.txt" "$workdir/fuzz_b.txt" || {
    echo "smoke: two identical fuzz runs printed different summaries — determinism broken" >&2
    exit 1
}

n_ids="$(cargo run --release -p distscroll-eval -- --list | tail -n +2 | wc -l)"
if [ "$n_ids" -ne "$N_EXPERIMENTS" ]; then
    echo "smoke: --list should print $N_EXPERIMENTS experiments, got $n_ids" >&2
    exit 1
fi
cargo run --release -p distscroll-eval -- --only F4 --effort quick > "$workdir/only_f4.txt"
grep -q "== summary: 1/1 experiments hold the paper's shape ==" "$workdir/only_f4.txt" || {
    echo "smoke: --only F4 fast gate failed" >&2
    exit 1
}
cargo run --release -p distscroll-eval -- --only L2 --effort quick > "$workdir/only_l2.txt"
grep -q "== summary: 1/1 experiments hold the paper's shape ==" "$workdir/only_l2.txt" || {
    echo "smoke: --only L2 fast gate failed" >&2
    exit 1
}
cargo run --release -p distscroll-eval -- --only L3 --effort quick > "$workdir/only_l3.txt"
grep -q "== summary: 1/1 experiments hold the paper's shape ==" "$workdir/only_l3.txt" || {
    echo "smoke: --only L3 fast gate failed" >&2
    exit 1
}
cargo run --release -p distscroll-eval -- --only R1 --effort quick > "$workdir/only_r1.txt"
grep -q "== summary: 1/1 experiments hold the paper's shape ==" "$workdir/only_r1.txt" || {
    echo "smoke: --only R1 fast gate failed" >&2
    exit 1
}

cargo run --release -p distscroll-eval -- --quick --jobs 1 --out "$workdir/jobs1" all \
    > "$workdir/stdout_jobs1.txt"
cargo run --release -p distscroll-eval -- --quick --jobs 4 --out "$workdir/jobs4" all \
    | tee "$workdir/stdout_jobs4.txt"

grep -q "== summary: $N_EXPERIMENTS/$N_EXPERIMENTS experiments hold the paper's shape ==" "$workdir/stdout_jobs4.txt" || {
    echo "smoke: shape summary missing or regressed" >&2
    exit 1
}
if grep -q "DOES NOT HOLD" "$workdir/stdout_jobs4.txt"; then
    echo "smoke: at least one experiment no longer holds the paper's shape" >&2
    exit 1
fi

# Guard the determinism diff against vacuity: two missing/empty report
# dirs would byte-compare equal, so require the full report set first.
for d in "$workdir/jobs1" "$workdir/jobs4"; do
    n="$(find "$d" -name '*.txt' 2> /dev/null | wc -l)"
    if [ "$n" -ne "$N_EXPERIMENTS" ]; then
        echo "smoke: expected $N_EXPERIMENTS report files in $d, found $n" >&2
        exit 1
    fi
done

if ! diff -r "$workdir/jobs1" "$workdir/jobs4"; then
    echo "smoke: --jobs 4 reports differ from --jobs 1 reports byte-for-byte" >&2
    exit 1
fi

echo "smoke: $N_EXPERIMENTS/$N_EXPERIMENTS experiments hold at --quick; --jobs 4 == --jobs 1 byte-for-byte"
