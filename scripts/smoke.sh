#!/usr/bin/env bash
# Smoke the full experiment suite through the parallel harness.
#
# Runs every experiment at quick effort with two worker threads and
# fails on (a) a nonzero exit — the CLI exits 1 when any experiment
# stops holding the paper's shape — or (b) a shape regression in the
# printed summary, checked independently of the exit code so a future
# CLI bug cannot silently pass the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

cargo run --release -p distscroll-eval -- --quick --jobs 2 all | tee "$out"

grep -q "== summary: 14/14 experiments hold the paper's shape ==" "$out" || {
    echo "smoke: shape summary missing or regressed" >&2
    exit 1
}
if grep -q "DOES NOT HOLD" "$out"; then
    echo "smoke: at least one experiment no longer holds the paper's shape" >&2
    exit 1
fi
echo "smoke: 14/14 experiments hold at --quick --jobs 2"
