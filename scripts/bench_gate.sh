#!/usr/bin/env bash
# CI perf-regression gate for the parallel harness.
#
# Runs the full quick-effort suite through `--bench-out` (which also
# re-asserts serial-vs-parallel report equality in-process), then checks
# the recorded v3 report:
#
#   * on a >= 4-core machine: overall speedup must be >= 1.5x, and no
#     experiment may be slower in the parallel pass than in the serial
#     pass (beyond 5% + 5 ms of timer noise — several experiments finish
#     in under a millisecond);
#   * below 4 cores the executor grants fewer tokens than `--jobs` asks
#     for, so parallel == serial is the best possible outcome; only a
#     pathological-overhead guard applies (>= 0.9x).
#
# Usage: scripts/bench_gate.sh [OUT_JSON]   (default BENCH_eval.json)
# Env:   BENCH_JOBS (default 4) — the parallel pass's --jobs value.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_eval.json}"
jobs="${BENCH_JOBS:-4}"

command -v python3 > /dev/null || {
    echo "bench gate: python3 not found — cannot check the report" >&2
    exit 1
}

cargo run --release -p distscroll-eval -- --quick --jobs "$jobs" --bench-out "$out" all \
    > /dev/null

# Fail loudly if the report never materialized: a gate that silently
# checks nothing is worse than no gate.
[ -s "$out" ] || {
    echo "bench gate: $out missing or empty after the bench run" >&2
    exit 1
}

python3 - "$out" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    bench = json.load(f)

schema = bench.get("schema")
if schema != 3:
    sys.exit(f"bench gate: expected v3 bench schema, got {schema!r}")

link = bench["link_quality"]
print(
    f"bench gate: link quality: {link['sent']} sent, {link['retransmitted']} retransmitted, "
    f"{link['delivered']} delivered, {link['duplicates']} duplicates"
)

cores = bench["cores"]
speedup = bench["speedup"]
stages = {s["stage"]: s for s in bench["stages"]}
regressed = [
    e["id"]
    for e in bench["experiments"]
    if e["parallel_s"] > e["serial_s"] * 1.05 + 0.005
]

print(
    f"bench gate: cores={cores} jobs={bench['jobs']} tokens={bench['tokens']} "
    f"speedup={speedup:.2f}x "
    f"(serial {bench['serial_wall_s']:.2f}s, parallel {bench['parallel_wall_s']:.2f}s)"
)
for name, stage in stages.items():
    ex = stage["executor"]
    print(
        f"bench gate: stage {name}: {stage['wall_s']:.2f}s wall, "
        f"{ex['jobs_submitted']} jobs, {ex['tasks_executed']} tasks "
        f"({ex['inline_claims']} inline / {ex['helper_steals']} stolen), "
        f"peak {ex['peak_live']} live"
    )

if cores >= 4:
    if speedup < 1.5:
        sys.exit(f"bench gate: FAIL — speedup {speedup:.2f}x < 1.5x on a {cores}-core machine")
    if regressed:
        sys.exit(
            "bench gate: FAIL — experiments slower parallel than serial at "
            f"--jobs {bench['jobs']}: {', '.join(regressed)}"
        )
else:
    print("bench gate: <4 cores — 1.5x threshold not applicable, overhead guard only")
    if speedup < 0.90:
        sys.exit(
            f"bench gate: FAIL — parallel pass {1.0 / max(speedup, 1e-9):.2f}x slower than "
            f"serial on a {cores}-core machine; executor overhead regressed"
        )

print("bench gate: PASS")
PY
