#!/usr/bin/env bash
# CI perf-regression gate for the parallel harness.
#
# Runs the full quick-effort suite through `--bench-out` (which also
# re-asserts serial-vs-parallel report equality in-process), then checks
# the recorded report (schema pinned in scripts/expected.sh):
#
#   * on a >= 4-core machine: overall speedup must be >= 1.5x, and no
#     experiment may be slower in the parallel pass than in the serial
#     pass (beyond 5% + 5 ms of timer noise — several experiments finish
#     in under a millisecond);
#   * below 4 cores the executor grants fewer tokens than `--jobs` asks
#     for, so parallel == serial is the best possible outcome; the
#     parallel gate is VACUOUS there and the report records it as such —
#     only a pathological-overhead guard applies (>= 0.9x);
#   * sim_speedup (event core vs fixed-tick device loop) must be > 1.0x
#     — the event core may never be slower than the path it replaced.
#     The issue's 10x aspiration is warn-and-record: the per-device RNG
#     draws noise every tick, so no tick is skippable and the honest
#     ceiling is the per-tick overhead that was removed (~2-3x).
#
#   * ingest (fleet-scale multiplexed-ARQ ingest) must be present with a
#     positive devices/sec — a missing object or a zero rate hard-fails;
#     a rate below the throughput target is warn-and-record (machine
#     speed is not a code property; absence of the measurement is).
#
#   * recognizer (per-sample classify latency, classic vs segmented)
#     must be present with positive latencies for both recognizers — a
#     missing object or a non-positive figure hard-fails; the segmented
#     machine costing more than the classic chain is warn-and-record
#     (it does strictly more work per sample).
#
#   * wire (corrupted-stream decode throughput + adversarial-session
#     goodput) must be present with a positive bytes/sec and a goodput
#     in (0, 1] — a missing object, a zero rate, or a goodput outside
#     that range hard-fails (goodput > 1 would mean the receiver
#     delivered records the transmitter never sent).
#
# Usage: scripts/bench_gate.sh [OUT_JSON]   (default BENCH_eval.json)
# Env:   BENCH_JOBS (default 4) — the parallel pass's --jobs value.
#        DISTSCROLL_INGEST_DEVICES — cohort size for the ingest bench
#        (the harness defaults to 10000; CI runs a smaller fixed scale).
#        INGEST_TARGET_DPS (default 500) — warn threshold, devices/sec.
set -euo pipefail
cd "$(dirname "$0")/.."
# shellcheck source=scripts/expected.sh
. "$(dirname "$0")/expected.sh"

out="${1:-BENCH_eval.json}"
jobs="${BENCH_JOBS:-4}"
target_dps="${INGEST_TARGET_DPS:-500}"

command -v python3 > /dev/null || {
    echo "bench gate: python3 not found — cannot check the report" >&2
    exit 1
}

cargo run --release -p distscroll-eval -- --quick --jobs "$jobs" --bench-out "$out" all \
    > /dev/null

# Fail loudly if the report never materialized: a gate that silently
# checks nothing is worse than no gate.
[ -s "$out" ] || {
    echo "bench gate: $out missing or empty after the bench run" >&2
    exit 1
}

python3 - "$out" "$BENCH_SCHEMA" "$target_dps" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    bench = json.load(f)
expected_schema = int(sys.argv[2])
target_dps = float(sys.argv[3])

schema = bench.get("schema")
if schema != expected_schema:
    sys.exit(f"bench gate: expected v{expected_schema} bench schema, got {schema!r}")

link = bench["link_quality"]
print(
    f"bench gate: link quality: {link['sent']} sent, {link['retransmitted']} retransmitted, "
    f"{link['delivered']} delivered, {link['duplicates']} duplicates"
)

cores = bench["cores"]
speedup = bench["speedup"]
stages = {s["stage"]: s for s in bench["stages"]}
regressed = [
    e["id"]
    for e in bench["experiments"]
    if e["parallel_s"] > e["serial_s"] * 1.05 + 0.005
]

print(
    f"bench gate: cores={cores} jobs={bench['jobs']} tokens={bench['tokens']} "
    f"speedup={speedup:.2f}x "
    f"(serial {bench['serial_wall_s']:.2f}s, parallel {bench['parallel_wall_s']:.2f}s)"
)
for name, stage in stages.items():
    ex = stage["executor"]
    print(
        f"bench gate: stage {name}: {stage['wall_s']:.2f}s wall, "
        f"{ex['jobs_submitted']} jobs, {ex['tasks_executed']} tasks "
        f"({ex['inline_claims']} inline / {ex['helper_steals']} stolen), "
        f"peak {ex['peak_live']} live"
    )

if cores >= 4:
    if speedup < 1.5:
        sys.exit(f"bench gate: FAIL — speedup {speedup:.2f}x < 1.5x on a {cores}-core machine")
    if regressed:
        sys.exit(
            "bench gate: FAIL — experiments slower parallel than serial at "
            f"--jobs {bench['jobs']}: {', '.join(regressed)}"
        )
elif cores == 1:
    # One core means the parallel pass *is* the serial pass: the tokens
    # the executor grants collapse to 1 and the speedup comparison
    # measures timer noise. Recording the vacuity loudly beats a gate
    # that quietly "passes" without having tested anything.
    print(
        "bench gate: WARNING — single-core machine; the parallel gate is "
        "VACUOUS (tokens collapse to 1, speedup measures noise only). "
        "Parallel scaling was NOT verified by this run."
    )
    if speedup < 0.90:
        sys.exit(
            f"bench gate: FAIL — parallel pass {1.0 / max(speedup, 1e-9):.2f}x slower than "
            f"serial on a single core; executor overhead regressed"
        )
else:
    print("bench gate: <4 cores — 1.5x threshold not applicable, overhead guard only")
    if speedup < 0.90:
        sys.exit(
            f"bench gate: FAIL — parallel pass {1.0 / max(speedup, 1e-9):.2f}x slower than "
            f"serial on a {cores}-core machine; executor overhead regressed"
        )

sim = bench["sim_speedup"]
print(
    f"bench gate: sim_speedup {sim['speedup']:.2f}x — event core {sim['event_wall_s']:.3f}s "
    f"vs fixed-tick {sim['tick_wall_s']:.3f}s over {sim['simulated_s']:.0f} simulated s"
)
if sim["speedup"] <= 1.0:
    sys.exit(
        f"bench gate: FAIL — event core ({sim['speedup']:.2f}x) is not faster than the "
        "fixed-tick loop it replaced"
    )
if sim["speedup"] < 10.0:
    print(
        f"bench gate: WARNING — sim_speedup {sim['speedup']:.2f}x below the 10x target. "
        "Recorded, not failed: the per-device RNG draws sensor noise every tick, so the "
        "event core cannot skip ticks — its ceiling is the per-tick overhead it removed."
    )

dec = bench["decode"]
print(
    f"bench gate: decode throughput {dec['bytes_per_sec'] / 1e6:.1f} MB/s "
    f"({dec['records']} records in {dec['wall_s']:.4f}s)"
)

ing = bench.get("ingest")
if ing is None:
    sys.exit("bench gate: FAIL — no `ingest` object in the report; the fleet ingest "
             "benchmark did not run")
dps = ing.get("devices_per_sec", 0)
if dps <= 0:
    sys.exit(f"bench gate: FAIL — ingest devices_per_sec is {dps!r}; the fleet ingest "
             "benchmark measured nothing")
print(
    f"bench gate: ingest {dps:.0f} devices/s — {ing['devices']} devices over "
    f"{ing['shards']} shards, {ing['frames_in']} frames, p50 {ing['p50_ingest_latency_us']:.0f} µs / "
    f"p99 {ing['p99_ingest_latency_us']:.0f} µs per round, "
    f"{ing['shed']} shed, {ing['evicted']} evicted"
)
if dps < target_dps:
    print(
        f"bench gate: WARNING — ingest {dps:.0f} devices/s below the {target_dps:.0f} "
        "devices/s target. Recorded, not failed: throughput scales with the machine; "
        "the hard gate is that the measurement exists and is positive."
    )

rec = bench.get("recognizer")
if rec is None:
    sys.exit("bench gate: FAIL — no `recognizer` object in the report; the classify-"
             "latency benchmark did not run")
classic_ns = rec.get("classic_ns_per_sample", 0)
segmented_ns = rec.get("segmented_ns_per_sample", 0)
if classic_ns <= 0 or segmented_ns <= 0:
    sys.exit(f"bench gate: FAIL — recognizer latencies classic={classic_ns!r} "
             f"segmented={segmented_ns!r}; the classify benchmark measured nothing")
print(
    f"bench gate: recognizer classic {classic_ns:.0f} ns/sample, segmented "
    f"{segmented_ns:.0f} ns/sample ({rec['samples']} samples)"
)
if segmented_ns > 10 * classic_ns:
    print(
        f"bench gate: WARNING — segmented recognizer {segmented_ns / classic_ns:.1f}x "
        "the classic chain's per-sample cost. Recorded, not failed: the state machine "
        "does strictly more work, but an order of magnitude deserves a look."
    )

wire = bench.get("wire")
if wire is None:
    sys.exit("bench gate: FAIL — no `wire` object in the report; the corrupted-stream "
             "decode benchmark did not run")
wbps = wire.get("bytes_per_sec", 0)
goodput = wire.get("goodput", -1)
if wbps <= 0:
    sys.exit(f"bench gate: FAIL — wire bytes_per_sec is {wbps!r}; the corrupted-stream "
             "decode benchmark measured nothing")
if not 0 < goodput <= 1:
    sys.exit(f"bench gate: FAIL — wire goodput {goodput!r} outside (0, 1]; either the "
             "adversarial session delivered nothing or the receiver invented records")
print(
    f"bench gate: wire {wbps / 1e6:.1f} MB/s corrupted-stream decode "
    f"({wire['frames_ok']} ok / {wire['frames_bad']} bad frames), goodput "
    f"{goodput * 100:.1f}% ({wire['records_delivered']} of {wire['records_sent']} records, "
    f"{wire['frames_lost']} of {wire['frames_offered']} frames lost in channel)"
)

print("bench gate: PASS")
PY
