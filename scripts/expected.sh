#!/usr/bin/env bash
# Single source of truth for cross-script expectations, sourced by
# smoke.sh and bench_gate.sh — bumping the bench schema or registering
# a new experiment is a one-line change here instead of a scavenger
# hunt across scripts.

# Version of the BENCH_eval.json document the harness writes.
BENCH_SCHEMA=7

# Experiments the CLI must list, run and write reports for.
N_EXPERIMENTS=17

# Rules the semantic lint must register (xtask lint --rules).
LINT_RULES=15
